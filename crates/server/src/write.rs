//! The durable write plane behind `POST /v1/events`.
//!
//! Admission happens at triage, before the request ever holds a worker
//! or a queue slot, in this order (cheapest rejection first):
//!
//! 1. write plane disabled → `403` (the route exists, writes don't);
//! 2. missing bearer token → `401`; unknown token → `403`;
//! 3. per-token rate budget exhausted → `429` + `Retry-After`;
//! 4. fsync queue deeper than `--max-sync-queue` → `503` + `Retry-After`;
//! 5. live head further behind than `--max-write-lag` events →
//!    `503` + `Retry-After`.
//!
//! Steps 4–5 are the write-flood valves: accepting more writes when the
//! fsync leader or the publishing head cannot keep up only converts
//! bounded client retries into unbounded server memory, so we shed and
//! let the at-least-once client come back with the same
//! `Idempotency-Key`. Reads never pass through this module, which is
//! how the read plane stays alive while writes are shed.
//!
//! Bodies are CSV (raw `N`/`E` trace lines, blank and `#` lines
//! ignored) or, when the `Content-Type` mentions `json`, a single
//! `{"events":["N 0 core", ...]}` document parsed by a tiny scanner —
//! no external JSON dependency. Either way the payload becomes
//! [`WalEvent`]s and lands in the WAL under the request's
//! `Idempotency-Key`, so a retried batch acks with `duplicate:true`
//! instead of double-applying.

use crate::handlers::Handled;
use crate::http::{BodyError, Conn, RequestHead, Response};
use osn_core::live::LiveQuery;
use osn_graph::wal::{Wal, WalError, WalEvent};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Everything `serve --accept-writes` hands the server.
#[derive(Debug)]
pub struct WritePlaneConfig {
    /// The open write-ahead log; appends here feed the tailed trace.
    pub wal: Arc<Wal>,
    /// Accepted bearer tokens. Empty means every request is `403`.
    pub tokens: Vec<String>,
    /// Steady-state accepted batches per second, per token.
    pub rate_limit: f64,
    /// Burst allowance (token-bucket capacity), per token.
    pub rate_burst: f64,
    /// Largest accepted request body.
    pub max_body_bytes: u64,
    /// Shed writes when more than this many appends await fsync.
    pub max_sync_queue: u64,
    /// Shed writes when the live head is this many events behind.
    pub max_lag_events: u64,
}

impl WritePlaneConfig {
    /// Production defaults around an open WAL; tests and the CLI
    /// override the knobs they care about.
    pub fn new(wal: Arc<Wal>, tokens: Vec<String>) -> WritePlaneConfig {
        WritePlaneConfig {
            wal,
            tokens,
            rate_limit: 200.0,
            rate_burst: 400.0,
            max_body_bytes: 1 << 20,
            max_sync_queue: 256,
            max_lag_events: 100_000,
        }
    }
}

/// Classic token bucket, refilled lazily on each take.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn take(&mut self, rate: f64, burst: f64, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * rate).min(burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Whole seconds until one token is available again (at least 1, so
    /// a `Retry-After: 0` never tells the client to hammer us).
    fn retry_after(&self, rate: f64) -> u32 {
        if rate <= 0.0 {
            return 1;
        }
        ((((1.0 - self.tokens).max(0.0) / rate).ceil()).min(3600.0) as u32).max(1)
    }
}

/// Runtime state of the write plane: the static config plus one rate
/// bucket per token (the token set is fixed at startup, so the map only
/// ever holds configured tokens — an attacker guessing tokens cannot
/// grow it).
#[derive(Debug)]
pub struct WriteState {
    cfg: WritePlaneConfig,
    buckets: Mutex<HashMap<String, TokenBucket>>,
}

impl WriteState {
    pub fn new(cfg: WritePlaneConfig) -> WriteState {
        WriteState {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    pub fn wal(&self) -> &Wal {
        &self.cfg.wal
    }

    pub fn max_body_bytes(&self) -> u64 {
        self.cfg.max_body_bytes
    }

    /// Admission control, run at triage. `None` means the request may
    /// proceed to the work queue; `Some` is the rejection to write
    /// straight back.
    pub fn admit(&self, head: &RequestHead, live: &LiveQuery) -> Option<Response> {
        let token = match bearer_token(head) {
            BearerToken::Missing => {
                return Some(Response::text(
                    401,
                    "missing bearer token (Authorization: Bearer <token>)\n",
                ))
            }
            BearerToken::Malformed => {
                return Some(Response::text(401, "malformed Authorization header\n"))
            }
            BearerToken::Token(t) => t,
        };
        if !token_authorized(&self.cfg.tokens, token) {
            return Some(Response::text(403, "unknown write token\n"));
        }
        // Rate budget before the durability valves: a noisy client gets
        // its own 429s rather than pushing everyone into the 503s.
        {
            let now = Instant::now();
            let mut buckets = self.buckets.lock().unwrap();
            let bucket = buckets.entry(token.to_string()).or_insert(TokenBucket {
                tokens: self.cfg.rate_burst,
                last: now,
            });
            if !bucket.take(self.cfg.rate_limit, self.cfg.rate_burst, now) {
                let mut r = Response::text(429, "write rate budget exhausted\n");
                r.retry_after = Some(bucket.retry_after(self.cfg.rate_limit));
                return Some(r);
            }
        }
        let depth = self.cfg.wal.sync_queue_depth();
        if depth > self.cfg.max_sync_queue {
            let mut r = Response::text(
                503,
                &format!("write plane saturated: {depth} appends awaiting fsync\n"),
            );
            r.retry_after = Some(1);
            return Some(r);
        }
        let lag = live.lag_events();
        if lag > self.cfg.max_lag_events {
            let mut r = Response::text(
                503,
                &format!("live head {lag} events behind; shedding writes\n"),
            );
            r.retry_after = Some(2);
            return Some(r);
        }
        None
    }

    /// Execute an admitted `POST /v1/events`: read the body under the
    /// request deadline, parse it, and append to the WAL. Returns the
    /// response plus the access-log reason.
    pub fn handle_post(&self, conn: &mut Conn, head: &RequestHead, deadline: Instant) -> Handled {
        let body = match conn.read_body(head, self.cfg.max_body_bytes, deadline) {
            Ok(body) => body,
            Err(err) => return body_error_response(&err),
        };
        let events = match parse_events(head, &body) {
            Ok(events) => events,
            Err(msg) => {
                return Handled {
                    response: Response::text(400, &format!("{msg}\n")),
                    reason: "bad-batch",
                }
            }
        };
        match self
            .cfg
            .wal
            .append(head.idempotency_key.as_deref(), &events)
        {
            Ok(ack) => {
                osn_obs::counter!("write.accepted").inc();
                osn_obs::counter!("write.events").add(ack.events);
                if ack.duplicate {
                    osn_obs::counter!("write.duplicates").inc();
                }
                let status = if ack.duplicate { 200 } else { 201 };
                Handled {
                    response: Response::json(
                        status,
                        format!(
                            "{{\"seq\":{},\"events\":{},\"duplicate\":{}}}",
                            ack.seq, ack.events, ack.duplicate
                        ),
                    ),
                    reason: "-",
                }
            }
            Err(err) => wal_error_response(&err),
        }
    }
}

/// Membership test for the configured token set. Every token is compared
/// (no short-circuit) with a constant-time byte fold, so the 403 timing
/// does not leak how long a matching prefix a guessed token had.
fn token_authorized(tokens: &[String], candidate: &str) -> bool {
    let mut ok = false;
    for t in tokens {
        ok |= ct_eq(t.as_bytes(), candidate.as_bytes());
    }
    ok
}

/// Constant-time byte-slice equality: XOR-accumulate over the longer of
/// the two lengths, folding the length difference in as well. Timing
/// depends only on the candidate's and tokens' lengths, never on where
/// the first mismatching byte sits.
fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0) as usize;
        let y = b.get(i).copied().unwrap_or(0) as usize;
        diff |= x ^ y;
    }
    diff == 0
}

/// Outcome of pulling a bearer token out of the Authorization header.
enum BearerToken<'a> {
    Missing,
    Malformed,
    Token(&'a str),
}

fn bearer_token(head: &RequestHead) -> BearerToken<'_> {
    let Some(auth) = head.authorization.as_deref() else {
        return BearerToken::Missing;
    };
    let mut parts = auth.splitn(2, ' ');
    let scheme = parts.next().unwrap_or("");
    let token = parts.next().unwrap_or("").trim();
    if !scheme.eq_ignore_ascii_case("bearer") || token.is_empty() {
        return BearerToken::Malformed;
    }
    BearerToken::Token(token)
}

fn body_error_response(err: &BodyError) -> Handled {
    let (status, reason) = match err {
        BodyError::LengthRequired => (411, "length-required"),
        BodyError::TooLarge => (413, "body-too-large"),
        BodyError::TimedOut => (408, "body-timeout"),
        BodyError::ConnectionLost => (0, "connection-lost"),
    };
    Handled {
        response: Response::text(status.max(400), &format!("{}\n", err.as_str())),
        reason,
    }
}

fn wal_error_response(err: &WalError) -> Handled {
    match err {
        WalError::OutOfOrder { .. } => Handled {
            response: Response::text(409, &format!("{err}\n")),
            reason: "out-of-order",
        },
        WalError::BadEvent { .. } | WalError::BadKey(_) => Handled {
            response: Response::text(400, &format!("{err}\n")),
            reason: "bad-batch",
        },
        WalError::Sealed => {
            let mut r = Response::text(503, "write plane is draining\n");
            r.retry_after = Some(1);
            Handled {
                response: r,
                reason: "sealed",
            }
        }
        WalError::Io(_) | WalError::Corrupt { .. } => Handled {
            response: Response::text(500, "write-ahead log failure\n"),
            reason: "wal-error",
        },
    }
}

/// Parse a request body into WAL events. CSV is the default; a JSON
/// content type switches to the `{"events":[...]}` document form.
pub fn parse_events(head: &RequestHead, body: &[u8]) -> Result<Vec<WalEvent>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let lines: Vec<String> = if head
        .content_type
        .as_deref()
        .is_some_and(|ct| ct.contains("json"))
    {
        parse_json_events(text)?
    } else {
        text.lines().map(str::to_string).collect()
    };
    let mut events = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ev = WalEvent::parse_line(line).map_err(|e| format!("event {}: {e}", i + 1))?;
        events.push(ev);
    }
    if events.is_empty() {
        return Err("batch contains no events".to_string());
    }
    Ok(events)
}

/// Extract the string array behind the `"events"` key of a flat JSON
/// object. Deliberately minimal: one key, an array of strings, the
/// escapes needed for line-oriented ASCII payloads. Anything fancier is
/// a client bug we would rather reject than guess at.
fn parse_json_events(text: &str) -> Result<Vec<String>, String> {
    let key = "\"events\"";
    let at = text
        .find(key)
        .ok_or_else(|| "JSON body must contain an \"events\" key".to_string())?;
    let rest = text[at + key.len()..].trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or_else(|| "expected ':' after \"events\"".to_string())?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('[')
        .ok_or_else(|| "\"events\" must be an array of strings".to_string())?;

    let mut out = Vec::new();
    let mut chars = rest.chars().peekable();
    loop {
        while chars.peek().is_some_and(|c| c.is_whitespace() || *c == ',') {
            chars.next();
        }
        match chars.peek() {
            Some(']') => return Ok(out),
            Some('"') => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => return Err("unterminated string in \"events\"".to_string()),
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('/') => s.push('/'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            other => {
                                return Err(format!(
                                    "unsupported escape {:?} in \"events\"",
                                    other.map(|c| c.to_string()).unwrap_or_default()
                                ))
                            }
                        },
                        Some(c) => s.push(c),
                    }
                }
                out.push(s);
            }
            other => {
                return Err(format!(
                    "expected string or ']' in \"events\", found {:?}",
                    other.map(|c| c.to_string()).unwrap_or_default()
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::wal::WalOptions;
    use osn_graph::Origin;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "osn-write-{name}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn state(name: &str, tokens: &[&str], rate: f64, burst: f64) -> WriteState {
        let dir = scratch(name);
        let opts = WalOptions {
            fsync: false,
            ..WalOptions::default()
        };
        let (wal, _report) = Wal::open_default(&dir.join("trace.log"), opts).unwrap();
        let mut cfg = WritePlaneConfig::new(
            Arc::new(wal),
            tokens.iter().map(|t| t.to_string()).collect(),
        );
        cfg.rate_limit = rate;
        cfg.rate_burst = burst;
        WriteState::new(cfg)
    }

    fn post_head(auth: Option<&str>) -> RequestHead {
        let mut h = RequestHead::new("POST", "/v1/events");
        h.authorization = auth.map(str::to_string);
        h
    }

    #[test]
    fn admission_rejects_missing_unknown_and_malformed_tokens() {
        let s = state("auth", &["s3cret"], 100.0, 100.0);
        let live = LiveQuery::for_follow();
        let r = s.admit(&post_head(None), &live).unwrap();
        assert_eq!(r.status, 401);
        let r = s.admit(&post_head(Some("Basic s3cret")), &live).unwrap();
        assert_eq!(r.status, 401);
        let r = s.admit(&post_head(Some("Bearer wrong")), &live).unwrap();
        assert_eq!(r.status, 403);
        assert!(s.admit(&post_head(Some("Bearer s3cret")), &live).is_none());
        // Scheme is case-insensitive per RFC 6750.
        assert!(s.admit(&post_head(Some("bearer s3cret")), &live).is_none());
    }

    #[test]
    fn token_check_is_exact_match_only() {
        let toks = vec!["s3cret".to_string(), "other".to_string()];
        assert!(token_authorized(&toks, "s3cret"));
        assert!(token_authorized(&toks, "other"));
        assert!(!token_authorized(&toks, "s3cre"));
        assert!(!token_authorized(&toks, "s3cretX"));
        assert!(!token_authorized(&toks, "s3crex"));
        assert!(!token_authorized(&toks, ""));
        assert!(!token_authorized(&[], "anything"));
    }

    #[test]
    fn rate_budget_exhaustion_returns_429_with_retry_after() {
        // Burst of 2, negligible refill: third request in a row sheds.
        let s = state("rate", &["tok"], 0.001, 2.0);
        let live = LiveQuery::for_follow();
        let head = post_head(Some("Bearer tok"));
        assert!(s.admit(&head, &live).is_none());
        assert!(s.admit(&head, &live).is_none());
        let r = s.admit(&head, &live).unwrap();
        assert_eq!(r.status, 429);
        assert!(r.retry_after.unwrap() >= 1);
    }

    #[test]
    fn rate_buckets_are_per_token() {
        let s = state("pertok", &["a", "b"], 0.001, 1.0);
        let live = LiveQuery::for_follow();
        assert!(s.admit(&post_head(Some("Bearer a")), &live).is_none());
        assert_eq!(
            s.admit(&post_head(Some("Bearer a")), &live).unwrap().status,
            429
        );
        // Token b still has its own budget.
        assert!(s.admit(&post_head(Some("Bearer b")), &live).is_none());
    }

    #[test]
    fn csv_and_json_bodies_parse_to_the_same_events() {
        let head = post_head(None);
        let csv = b"# comment\nN 0 core\n\nE 5 0 1\n";
        let got = parse_events(&head, csv).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], WalEvent::node(0, Origin::Core));
        assert_eq!(got[1], WalEvent::edge(5, 0, 1));

        let mut jhead = post_head(None);
        jhead.content_type = Some("application/json".to_string());
        let json = br#"{"events": ["N 0 core", "E 5 0 1"]}"#;
        assert_eq!(parse_events(&jhead, json).unwrap(), got);
    }

    #[test]
    fn bad_bodies_are_rejected_with_reasons() {
        let head = post_head(None);
        assert!(parse_events(&head, b"").is_err());
        assert!(parse_events(&head, b"# only comments\n").is_err());
        assert!(parse_events(&head, b"X 0 what\n").is_err());
        assert!(parse_events(&head, b"\xff\xfe").is_err());
        let mut jhead = post_head(None);
        jhead.content_type = Some("application/json; charset=utf-8".to_string());
        assert!(parse_events(&jhead, b"{\"wrong\": []}").is_err());
        assert!(parse_events(&jhead, b"{\"events\": [42]}").is_err());
        assert!(parse_events(&jhead, b"{\"events\": [\"N 0 core\"").is_err());
    }

    #[test]
    fn wal_errors_map_to_the_documented_statuses() {
        let h = wal_error_response(&WalError::OutOfOrder { time: 1, last: 5 });
        assert_eq!(h.response.status, 409);
        let h = wal_error_response(&WalError::BadKey("x".into()));
        assert_eq!(h.response.status, 400);
        let h = wal_error_response(&WalError::Sealed);
        assert_eq!(h.response.status, 503);
        assert_eq!(h.response.retry_after, Some(1));
        let h = wal_error_response(&WalError::Io(std::io::Error::other("disk")));
        assert_eq!(h.response.status, 500);
    }
}
