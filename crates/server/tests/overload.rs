//! In-process robustness drills for the snapshot query daemon.
//!
//! These are the deterministic overload/chaos scenarios from the design
//! runbook: a connection flood against a deliberately tiny worker pool,
//! injected handler panics, slow-loris and header-flood clients, and
//! graceful-drain success and abort. Everything runs in-process so the
//! drills can assert on the server's own counters, not just on wire
//! behaviour.

use osn_core::communities::CommunityAnalysisConfig;
use osn_core::live::{run_follow, LiveHeadConfig, LiveQuery};
use osn_core::network::MetricSeriesConfig;
use osn_core::query::SnapshotQuery;
use osn_genstream::{TraceConfig, TraceGenerator};
use osn_graph::testutil::{
    header_flood, http_get, http_get_half_close, slow_loris, ChaosAction, ChaosHttpOutcome,
    ChaosTaskPlan,
};
use osn_server::{Server, ServerConfig};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The analyses are pure functions of the trace, so every drill shares
/// one pre-built engine (building it dominates test wall time).
fn query() -> Arc<SnapshotQuery> {
    static Q: OnceLock<Arc<SnapshotQuery>> = OnceLock::new();
    Arc::clone(Q.get_or_init(|| {
        let log = TraceGenerator::new(TraceConfig::tiny()).generate();
        let q = SnapshotQuery::builder()
            .metrics(MetricSeriesConfig {
                stride: 40,
                path_sample: 30,
                clustering_sample: 100,
                workers: 2,
                ..Default::default()
            })
            .communities(CommunityAnalysisConfig {
                stride: 80,
                ..Default::default()
            })
            .build(&log);
        Arc::new(q)
    }))
}

fn start(cfg: ServerConfig) -> Server {
    Server::start(cfg, query()).expect("server starts")
}

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

#[test]
fn serves_bytes_identical_to_the_query_engine() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let q = query();

    let day = q.metric_days()[0];
    let resp = http_get(&addr, &format!("/v1/metrics/{day}"), CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("text/csv; charset=utf-8"));
    assert_eq!(resp.body, q.metrics_row_csv(day).unwrap().into_bytes());

    let cday = q.community_days()[0];
    let resp = http_get(&addr, &format!("/v1/communities/{cday}"), CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, q.communities_row_csv(cday).unwrap().into_bytes());

    let resp = http_get(&addr, "/v1/days", CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, q.days_json().into_bytes());

    // /v1/meta is triage-answered and reports provenance: the engine
    // kind plus the server's own version.
    let resp = http_get(&addr, "/v1/meta", CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.body_str().to_string();
    assert!(body.contains("\"engine\":\"incremental\""), "{body}");
    assert!(body.contains("\"version\":\""), "{body}");

    let resp = http_get(&addr, "/readyz", CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body_str().contains("\"ready\":true"));

    // 404 for a day with no snapshot, 400 for a non-day, 405 for POST.
    assert_eq!(
        http_get(&addr, "/v1/metrics/99999", CLIENT_TIMEOUT)
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        http_get(&addr, "/v1/metrics/xyz", CLIENT_TIMEOUT)
            .unwrap()
            .status,
        400
    );
    let resp = osn_graph::testutil::http_request_raw(
        &addr,
        b"POST /healthz HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n",
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 405);

    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn overload_drill_sheds_fast_and_keeps_health_green() {
    let q = query();
    let day = q.metric_days()[0];
    // Two workers, a queue of four, and a 25ms handler delay: a 64-way
    // flood must overflow the work queue and shed.
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 4,
        chaos: Some(ChaosTaskPlan::default().with_rule(day as u64, None, ChaosAction::Delay(25))),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();

    // Health prober runs for the whole flood: /healthz must stay 200.
    let health_addr = addr.clone();
    let prober = std::thread::spawn(move || {
        let mut greens = 0u32;
        for _ in 0..20 {
            let resp = http_get(&health_addr, "/healthz", CLIENT_TIMEOUT)
                .expect("health probe must never hang or be refused");
            assert_eq!(resp.status, 200, "/healthz degraded under flood");
            greens += 1;
            std::thread::sleep(Duration::from_millis(5));
        }
        greens
    });

    let path = format!("/v1/metrics/{day}");
    let clients: Vec<_> = (0..64)
        .map(|_| {
            let addr = addr.clone();
            let path = path.clone();
            std::thread::spawn(move || {
                let started = Instant::now();
                let resp = http_get(&addr, &path, CLIENT_TIMEOUT).expect("no hung sockets");
                (resp, started.elapsed())
            })
        })
        .collect();

    let mut ok = 0u32;
    let mut shed = 0u32;
    for c in clients {
        let (resp, elapsed) = c.join().unwrap();
        match resp.status {
            200 => ok += 1,
            503 => {
                shed += 1;
                // Sheds must be fast (no queue-camping) and advisory.
                assert_eq!(resp.header("retry-after"), Some("1"));
                assert!(elapsed < Duration::from_secs(5), "slow shed: {elapsed:?}");
            }
            other => panic!("flood produced status {other}"),
        }
    }
    assert_eq!(ok + shed, 64);
    assert!(ok > 0, "nothing was served");
    assert!(shed > 0, "nothing was shed — queue bound not enforced");
    assert_eq!(prober.join().unwrap(), 20);

    let stats = server.stats();
    assert_eq!(stats.ok as u32, ok + 20, "stats disagree with clients");
    assert!(stats.shed >= u64::from(shed));
    assert_eq!(stats.panicked, 0);

    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn stats_endpoint_agrees_with_the_access_log_after_overload() {
    use osn_server::AccessLog;
    use std::io::Write;
    use std::sync::Mutex;

    // Capture the access log so the drill can audit it afterwards.
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);
    impl Write for Buf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let buf = Buf::default();

    let q = query();
    let day = q.metric_days()[0];
    // The shard shed counters live in the global telemetry registry
    // (shared by every server in this test process), so the drill
    // asserts on deltas.
    let shard_shed_base = osn_obs::counter("http.shard.0.shed").value();
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 4,
        chaos: Some(ChaosTaskPlan::default().with_rule(day as u64, None, ChaosAction::Delay(25))),
        access_log: AccessLog::to_sink(Box::new(buf.clone())),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();

    // Overload: more concurrent clients than queue + workers can absorb.
    let path = format!("/v1/metrics/{day}");
    let clients: Vec<_> = (0..32)
        .map(|_| {
            let addr = addr.clone();
            let path = path.clone();
            std::thread::spawn(move || http_get(&addr, &path, CLIENT_TIMEOUT).unwrap().status)
        })
        .collect();
    for c in clients {
        let status = c.join().unwrap();
        assert!(status == 200 || status == 503, "unexpected status {status}");
    }

    // The live endpoint must answer mid-run with both document sections.
    let resp = http_get(&addr, "/v1/stats", CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let doc = osn_obs::json::parse(resp.body_str()).expect("stats JSON parses");
    let srv = doc.get("server").expect("server section");
    assert!(
        srv.get("accepted")
            .and_then(osn_obs::json::Json::as_f64)
            .unwrap()
            >= 32.0
    );
    // The per-shard queue section is part of the document now: one
    // entry per shard (a default server has one), each with queue
    // depths and its shed counter.
    let shards = doc
        .get("shards")
        .and_then(osn_obs::json::Json::as_arr)
        .expect("shards section");
    assert_eq!(shards.len(), 1, "a default server has one shard");
    for key in ["triage", "work", "parked", "shed"] {
        assert!(shards[0].get(key).is_some(), "shard entry missing {key}");
    }
    let telemetry = doc.get("telemetry").expect("telemetry section");
    let hist = telemetry
        .get("histograms")
        .and_then(|h| h.get("http.latency_us.metrics"))
        .expect("per-route latency histogram present");
    assert!(
        hist.get("count")
            .and_then(osn_obs::json::Json::as_f64)
            .unwrap()
            >= 1.0
    );

    // The Prometheus rendering answers too and carries the same families.
    let prom = http_get(&addr, "/metrics", CLIENT_TIMEOUT).unwrap();
    assert_eq!(prom.status, 200);
    let prom_text = prom.body_str().to_string();
    assert!(prom_text.contains("# TYPE osn_server_accepted counter"));
    assert!(prom_text.contains("# TYPE osn_http_latency_us_metrics histogram"));

    // Let the stats/metrics requests' own finish() land (the response is
    // written before the access line), then freeze the counters.
    std::thread::sleep(Duration::from_millis(150));
    let stats = server.stats();
    server.request_shutdown();
    assert!(server.join().clean());

    // Every *response* has exactly one access line (with keep-alive one
    // accepted connection may carry many), and re-classifying those
    // lines must reproduce the server's own counters. These clients all
    // send `Connection: close`, so requests and accepts coincide here.
    let log_text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = log_text
        .lines()
        .filter(|l| l.starts_with("access "))
        .collect();
    assert_eq!(lines.len() as u64, stats.requests, "one line per response");
    assert_eq!(stats.requests, stats.accepted, "close-framed clients");

    let field = |line: &str, key: &str| -> String {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")).map(str::to_string))
            .unwrap_or_else(|| panic!("no {key}= in {line}"))
    };
    let (mut ok, mut client_error, mut server_error, mut shed) = (0u64, 0u64, 0u64, 0u64);
    for line in &lines {
        let status: u16 = field(line, "status").parse().unwrap();
        let reason = field(line, "reason");
        let load_shed = matches!(
            reason.as_str(),
            "shed" | "timed-out" | "transient-exhausted"
        );
        match status {
            200..=299 => ok += 1,
            400..=499 => client_error += 1,
            _ if load_shed => shed += 1,
            _ => server_error += 1,
        }
    }
    assert_eq!(ok, stats.ok, "2xx lines vs stats.ok");
    assert_eq!(client_error, stats.client_error);
    assert_eq!(server_error, stats.server_error);
    assert_eq!(shed, stats.shed, "shed lines vs stats.shed");

    // Sheds are also attributed per shard. The registry is global to
    // the process (other drills' servers share shard 0), so the summed
    // delta bounds this server's count from above.
    let shard_shed_delta = osn_obs::counter("http.shard.0.shed").value() - shard_shed_base;
    assert!(
        shard_shed_delta >= stats.shed,
        "summed shard sheds ({shard_shed_delta}) lost track of stats.shed ({})",
        stats.shed
    );
}

#[test]
fn handler_panic_is_a_500_not_a_dead_process() {
    let q = query();
    let day = q.metric_days()[0];
    let server = start(ServerConfig {
        workers: 1,
        chaos: Some(ChaosTaskPlan::default().with_rule(
            day as u64,
            None,
            ChaosAction::Panic("injected handler bug".into()),
        )),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();

    let resp = http_get(&addr, &format!("/v1/metrics/{day}"), CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 500);
    assert!(resp.body_str().contains("panicked"));

    // The worker that caught the panic must still be alive and serving:
    // an unpoisoned day and the poisoned day again both get answers.
    let other_day = q.metric_days()[1];
    let resp = http_get(&addr, &format!("/v1/metrics/{other_day}"), CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let resp = http_get(&addr, &format!("/v1/metrics/{day}"), CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 500);

    let stats = server.stats();
    assert_eq!(stats.panicked, 2);
    assert_eq!(stats.server_error, 2);

    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn slow_loris_is_cut_at_the_header_deadline() {
    let server = start(ServerConfig {
        header_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();

    let started = Instant::now();
    let out = slow_loris(
        &addr,
        Duration::from_millis(20),
        64 * 1024,
        Duration::from_secs(30),
    )
    .unwrap();
    let elapsed = started.elapsed();
    assert!(
        out.server_terminated(),
        "slow-loris outlived the server: {out:?}"
    );
    if let ChaosHttpOutcome::Answered { response, .. } = &out {
        assert_eq!(response.status, 408);
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "cutoff took {elapsed:?}, header deadline is not being enforced"
    );

    // The loris never got a thread pinned: normal service continues.
    assert_eq!(
        http_get(&addr, "/healthz", CLIENT_TIMEOUT).unwrap().status,
        200
    );
    assert!(server.stats().bad_heads >= 1);

    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn header_flood_is_refused_not_buffered() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr().to_string();

    // ~70 bytes per junk header line; 1000 lines ≫ the 8 KiB head cap.
    let out = header_flood(&addr, 1000, Duration::from_secs(10)).unwrap();
    assert!(out.server_terminated(), "flood was swallowed: {out:?}");
    if let ChaosHttpOutcome::Answered { response, .. } = &out {
        assert_eq!(response.status, 431);
    }
    assert_eq!(
        http_get(&addr, "/healthz", CLIENT_TIMEOUT).unwrap().status,
        200
    );

    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn half_closed_client_still_gets_its_bytes() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let q = query();
    let day = q.metric_days()[0];
    let resp = http_get_half_close(&addr, &format!("/v1/metrics/{day}"), CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, q.metrics_row_csv(day).unwrap().into_bytes());
    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn follow_mode_degrades_before_first_publish_then_serves() {
    // An empty live handle: the daemon is up but nothing is published.
    let live = LiveQuery::for_follow();
    let server = Server::start_live(ServerConfig::default(), live.clone()).expect("server starts");
    let addr = server.local_addr().to_string();

    // Probes and head state answer; data endpoints degrade with 503 +
    // Retry-After (never 500, never a hang).
    assert_eq!(
        http_get(&addr, "/healthz", CLIENT_TIMEOUT).unwrap().status,
        200
    );
    let head = http_get(&addr, "/v1/head", CLIENT_TIMEOUT).unwrap();
    assert_eq!(head.status, 200);
    let head_body = head.body_str().to_string();
    assert!(head_body.contains("\"published\":false"), "{head_body}");
    assert!(head_body.contains("\"follow\":true"), "{head_body}");
    let ready = http_get(&addr, "/readyz", CLIENT_TIMEOUT).unwrap();
    assert_eq!(ready.status, 503);
    assert!(ready.body_str().contains("\"ready\":false"));
    for path in ["/v1/days", "/v1/metrics/0", "/v1/meta"] {
        let resp = http_get(&addr, path, CLIENT_TIMEOUT).unwrap();
        assert_eq!(resp.status, 503, "{path} before first publish");
        assert_eq!(resp.header("retry-after"), Some("1"), "{path}");
    }

    // Run a head over a complete trace file; once it finishes, the same
    // server must serve engine-identical bytes without restarting.
    let dir = std::env::temp_dir().join(format!("osn-follow-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.events");
    let log = TraceGenerator::new(TraceConfig::tiny()).generate();
    let mut bytes = Vec::new();
    osn_graph::io::write_log_v2_chunked(&log, &mut bytes, 256).unwrap();
    std::fs::write(&trace, &bytes).unwrap();

    let cfg = LiveHeadConfig {
        poll_interval: Duration::from_millis(1),
        query: SnapshotQuery::builder()
            .metrics(MetricSeriesConfig {
                stride: 40,
                path_sample: 30,
                clustering_sample: 100,
                workers: 2,
                ..Default::default()
            })
            .communities(CommunityAnalysisConfig {
                stride: 80,
                ..Default::default()
            })
            .config()
            .clone(),
        ..LiveHeadConfig::new(&trace)
    };
    let report = run_follow(&cfg, &live, &std::sync::atomic::AtomicBool::new(false)).unwrap();
    assert!(report.completed);

    let batch = SnapshotQuery::build(&log, &cfg.query);
    let day = batch.metric_days()[0];
    let resp = http_get(&addr, &format!("/v1/metrics/{day}"), CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, batch.metrics_row_csv(day).unwrap().into_bytes());
    let ready = http_get(&addr, "/readyz", CLIENT_TIMEOUT).unwrap();
    assert_eq!(ready.status, 200);
    let head = http_get(&addr, "/v1/head", CLIENT_TIMEOUT).unwrap();
    assert!(
        head.body_str().contains("\"health\":\"complete\""),
        "{}",
        head.body_str()
    );

    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn graceful_drain_finishes_in_flight_work() {
    let q = query();
    let day = q.metric_days()[0];
    // One worker with a 150ms handler: requests sent just before
    // shutdown are in flight when the drain starts and must complete.
    let server = start(ServerConfig {
        workers: 1,
        chaos: Some(ChaosTaskPlan::default().with_rule(day as u64, None, ChaosAction::Delay(150))),
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();

    let path = format!("/v1/metrics/{day}");
    let in_flight: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let path = path.clone();
            std::thread::spawn(move || http_get(&addr, &path, CLIENT_TIMEOUT).unwrap().status)
        })
        .collect();
    // Let the requests reach the pipeline before draining.
    std::thread::sleep(Duration::from_millis(50));
    server.request_shutdown();
    let report = server.join();
    assert!(
        report.clean(),
        "drain aborted {} request(s)",
        report.aborted
    );
    for c in in_flight {
        assert_eq!(c.join().unwrap(), 200, "in-flight request lost in drain");
    }
}

#[test]
fn drain_deadline_abandons_stuck_work_and_reports_it() {
    let q = query();
    let day = q.metric_days()[0];
    // Handler sleeps 3s; drain deadline is 200ms: the drain must give
    // up and report the stuck request instead of hanging.
    let server = start(ServerConfig {
        workers: 1,
        chaos: Some(ChaosTaskPlan::default().with_rule(
            day as u64,
            None,
            ChaosAction::Delay(3_000),
        )),
        drain_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();

    let path = format!("/v1/metrics/{day}");
    let stuck = {
        let addr = addr.clone();
        std::thread::spawn(move || http_get(&addr, &path, CLIENT_TIMEOUT))
    };
    std::thread::sleep(Duration::from_millis(100));
    server.request_shutdown();
    let started = Instant::now();
    let report = server.join();
    assert!(!report.clean(), "a 3s handler cannot drain in 200ms");
    assert!(report.aborted >= 1);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "drain deadline not enforced"
    );
    // The stuck client eventually gets its (late) answer from the
    // abandoned worker — the abort is about the drain contract, not
    // about resetting sockets out from under handlers.
    let _ = stuck.join().unwrap();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    use osn_graph::testutil::HttpClient;

    let server = start(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let q = query();
    let day = q.metric_days()[0];
    let expected = q.metrics_row_csv(day).unwrap().into_bytes();

    let mut client = HttpClient::connect(&addr).unwrap();
    // Mixed fast-path and data requests on the same socket, every body
    // byte-identical to the engine (the second data hit comes from the
    // response cache and must not differ).
    for _ in 0..3 {
        let resp = client
            .get(&format!("/v1/metrics/{day}"), CLIENT_TIMEOUT)
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, expected);
        let resp = client.get("/healthz", CLIENT_TIMEOUT).unwrap();
        assert_eq!(resp.status, 200);
    }
    let resp = client.get("/v1/days", CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.body, q.days_json().into_bytes());
    drop(client);

    // Give the server a beat to observe the hangup, then check the
    // books: one accept, many requests, nothing miscounted as an error.
    std::thread::sleep(Duration::from_millis(100));
    let stats = server.stats();
    assert_eq!(stats.accepted, 1, "keep-alive must reuse the connection");
    assert_eq!(stats.requests, 7);
    assert_eq!(stats.ok, 7);
    assert_eq!(
        stats.bad_heads, 0,
        "clean hangup must not count as a bad head"
    );

    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn pipelined_requests_answer_in_order() {
    use osn_graph::testutil::HttpClient;

    let server = start(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let q = query();
    let days: Vec<u32> = q.metric_days().iter().take(3).copied().collect();
    assert!(days.len() >= 2, "need at least two days to prove ordering");

    // One burst carrying every request back-to-back; responses must come
    // back in request order with intact bodies.
    let mut burst = String::new();
    for day in &days {
        burst.push_str(&format!(
            "GET /v1/metrics/{day} HTTP/1.1\r\nHost: osn\r\n\r\n"
        ));
    }
    let mut client = HttpClient::connect(&addr).unwrap();
    client.send_raw(burst.as_bytes()).unwrap();
    for day in &days {
        let resp = client.read_response(CLIENT_TIMEOUT).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            q.metrics_row_csv(*day).unwrap().into_bytes(),
            "response out of order or torn for day {day}"
        );
    }

    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn gzip_responses_decompress_to_identical_bytes() {
    use osn_graph::gzip::gzip_decompress;
    use osn_graph::testutil::HttpClient;

    // The shared fixture's bodies are all under ~130 bytes, where the
    // gzip envelope inflates instead of shrinking; a dense metric-day
    // stride gives this drill a day listing long enough to compress.
    let log = TraceGenerator::new(TraceConfig::tiny()).generate();
    let q = Arc::new(
        SnapshotQuery::builder()
            .metrics(MetricSeriesConfig {
                stride: 2,
                path_sample: 10,
                clustering_sample: 20,
                workers: 2,
                ..Default::default()
            })
            .communities(CommunityAnalysisConfig {
                stride: 80,
                ..Default::default()
            })
            .build(&log),
    );
    let server = Server::start(ServerConfig::default(), Arc::clone(&q)).expect("server starts");
    let addr = server.local_addr().to_string();
    let day = q.metric_days()[0];
    let expected = q.metrics_row_csv(day).unwrap().into_bytes();

    let mut client = HttpClient::connect(&addr).unwrap();
    // Warm the cache with a plain request, then ask for gzip. The days
    // listing is the compressible body here (the per-day CSV rows are
    // tiny enough that gzip would inflate them — covered below).
    let days_json = q.days_json().into_bytes();
    let plain = client.get("/v1/days", CLIENT_TIMEOUT).unwrap();
    assert_eq!(plain.body, days_json);
    assert_eq!(plain.header("content-encoding"), None);

    let gz = client
        .get_with("/v1/days", &[("Accept-Encoding", "gzip")], CLIENT_TIMEOUT)
        .unwrap();
    assert_eq!(gz.status, 200);
    assert_eq!(gz.header("content-encoding"), Some("gzip"));
    assert!(
        gz.body.len() < days_json.len(),
        "gzip did not shrink the body"
    );
    assert_eq!(gzip_decompress(&gz.body).unwrap(), days_json);

    // A body the compressor cannot shrink is served as identity even
    // when the client accepts gzip — never pay to inflate.
    let small = client
        .get_with(
            &format!("/v1/metrics/{day}"),
            &[("Accept-Encoding", "gzip")],
            CLIENT_TIMEOUT,
        )
        .unwrap();
    assert_eq!(small.header("content-encoding"), None);
    assert_eq!(small.body, expected);

    // A client that does not accept gzip keeps getting identity bytes.
    let plain_again = client.get("/v1/days", CLIENT_TIMEOUT).unwrap();
    assert_eq!(plain_again.body, days_json);

    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn multi_shard_server_serves_all_routes_and_reports_per_shard_state() {
    let server = start(ServerConfig {
        shards: 3,
        workers: 3,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let q = query();
    let day = q.metric_days()[0];
    let expected = q.metrics_row_csv(day).unwrap().into_bytes();

    // Spray connections so every shard sees traffic (reuseport hashes by
    // 4-tuple; 24 distinct source ports cover 3 shards comfortably).
    let clients: Vec<_> = (0..24)
        .map(|_| {
            let addr = addr.clone();
            let path = format!("/v1/metrics/{day}");
            std::thread::spawn(move || http_get(&addr, &path, CLIENT_TIMEOUT).unwrap())
        })
        .collect();
    for c in clients {
        let resp = c.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, expected, "shard served different bytes");
    }

    // Per-shard state is visible on both surfaces.
    let stats = http_get(&addr, "/v1/stats", CLIENT_TIMEOUT).unwrap();
    let doc = osn_obs::json::parse(stats.body_str()).unwrap();
    let shards = doc
        .get("shards")
        .and_then(osn_obs::json::Json::as_arr)
        .expect("shards section");
    assert_eq!(shards.len(), 3);

    let prom = http_get(&addr, "/metrics", CLIENT_TIMEOUT).unwrap();
    let text = prom.body_str().to_string();
    for shard in 0..3 {
        for queue in ["triage", "work", "parked"] {
            assert!(
                text.contains(&format!(
                    "osn_http_queue_depth{{shard=\"{shard}\",queue=\"{queue}\"}}"
                )),
                "missing labeled gauge for shard {shard}/{queue}"
            );
        }
        assert!(text.contains(&format!("osn_http_shard_shed{{shard=\"{shard}\"}}")));
    }

    server.request_shutdown();
    assert!(server.join().clean());
}

#[test]
fn idle_keep_alive_connections_park_wake_and_cull() {
    use osn_graph::testutil::HttpClient;

    let server = start(ServerConfig {
        keepalive_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();

    // Idle well past the worker linger (so the connection parks), then
    // send again: the parker must wake it back into service.
    let mut client = HttpClient::connect(&addr).unwrap();
    assert_eq!(client.get("/healthz", CLIENT_TIMEOUT).unwrap().status, 200);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(client.get("/v1/meta", CLIENT_TIMEOUT).unwrap().status, 200);

    // Idle past the keep-alive budget: the server must close the parked
    // connection, and the close must be silent (no error counters).
    std::thread::sleep(Duration::from_millis(900));
    let err = client
        .send_get("/healthz", &[])
        .err()
        .or_else(|| client.read_response(Duration::from_secs(2)).err());
    assert!(
        err.is_some(),
        "idle connection survived the keep-alive cull"
    );

    let stats = server.stats();
    assert_eq!(stats.bad_heads, 0, "cull must not be scored as a bad head");
    assert_eq!(stats.accepted, 1);

    server.request_shutdown();
    assert!(server.join().clean());
}
