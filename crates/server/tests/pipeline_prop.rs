//! Property drill: pipelined requests split across arbitrary chunk
//! boundaries — paced like a slow (but honest) writer — must come back
//! as exactly one response per request, in request order, each with an
//! intact body.
//!
//! This is the wire-level contract behind the keep-alive rebuild: the
//! server's buffered connection reads may see a request head sliced at
//! any byte (including mid-token and mid-CRLF), several heads in one
//! read, or a head glued to the tail of the previous request, and none
//! of that may reorder, tear, or drop a response.

use osn_core::communities::CommunityAnalysisConfig;
use osn_core::network::MetricSeriesConfig;
use osn_core::query::SnapshotQuery;
use osn_genstream::{TraceConfig, TraceGenerator};
use osn_graph::testutil::HttpClient;
use osn_server::{Server, ServerConfig};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One server shared by every proptest case (building the engine and
/// binding once keeps the property fast enough to run many cases).
fn server() -> &'static (Server, Arc<SnapshotQuery>) {
    static S: OnceLock<(Server, Arc<SnapshotQuery>)> = OnceLock::new();
    S.get_or_init(|| {
        let log = TraceGenerator::new(TraceConfig::tiny()).generate();
        let q = Arc::new(
            SnapshotQuery::builder()
                .metrics(MetricSeriesConfig {
                    stride: 40,
                    path_sample: 30,
                    clustering_sample: 100,
                    workers: 2,
                    ..Default::default()
                })
                .communities(CommunityAnalysisConfig {
                    stride: 80,
                    ..Default::default()
                })
                .build(&log),
        );
        let server = Server::start(
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            Arc::clone(&q),
        )
        .expect("server starts");
        (server, q)
    })
}

/// A request the property can pipeline, with its expected answer.
#[derive(Debug, Clone, Copy)]
enum Req {
    Health,
    Days,
    Metrics(usize),
    Communities(usize),
}

fn render(req: Req, q: &SnapshotQuery) -> (String, Vec<u8>) {
    match req {
        Req::Health => ("/healthz".to_string(), b"ok\n".to_vec()),
        Req::Days => ("/v1/days".to_string(), q.days_json().into_bytes()),
        Req::Metrics(i) => {
            let day = q.metric_days()[i % q.metric_days().len()];
            (
                format!("/v1/metrics/{day}"),
                q.metrics_row_csv(day).unwrap().into_bytes(),
            )
        }
        Req::Communities(i) => {
            let day = q.community_days()[i % q.community_days().len()];
            (
                format!("/v1/communities/{day}"),
                q.communities_row_csv(day).unwrap().into_bytes(),
            )
        }
    }
}

fn req_strategy() -> impl Strategy<Value = Req> {
    (0..4usize, 0..8usize).prop_map(|(kind, i)| match kind {
        0 => Req::Health,
        1 => Req::Days,
        2 => Req::Metrics(i),
        _ => Req::Communities(i),
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn pipelined_chunked_requests_never_reorder_or_tear(
        reqs in prop::collection::vec(req_strategy(), 1..6),
        // Chunk sizes the burst is sliced into, cycled; 1 forces
        // byte-at-a-time worst cases into the mix.
        chunks in prop::collection::vec(1..24usize, 1..8),
        // Pacing between chunks, in ms (0 = all chunks back-to-back).
        pace_ms in 0u64..4,
    ) {
        let (server, q) = server();
        let addr = server.local_addr().to_string();

        let mut burst = Vec::new();
        let mut expected = Vec::new();
        for req in &reqs {
            let (path, body) = render(*req, q);
            burst.extend_from_slice(
                format!("GET {path} HTTP/1.1\r\nHost: osn\r\n\r\n").as_bytes(),
            );
            expected.push(body);
        }

        let mut client = HttpClient::connect(&addr).unwrap();
        let mut offset = 0;
        let mut chunk_idx = 0;
        while offset < burst.len() {
            let len = chunks[chunk_idx % chunks.len()].min(burst.len() - offset);
            chunk_idx += 1;
            client.send_raw(&burst[offset..offset + len]).unwrap();
            offset += len;
            if pace_ms > 0 {
                std::thread::sleep(Duration::from_millis(pace_ms));
            }
        }

        for (i, want) in expected.iter().enumerate() {
            let resp = client
                .read_response(Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("response {i} missing: {e}"));
            prop_assert_eq!(resp.status, 200, "request {} failed", i);
            prop_assert_eq!(
                &resp.body,
                want,
                "response {} reordered or torn (paths: {:?})",
                i,
                reqs
            );
        }
    }
}
