//! Newman modularity.

use crate::partition::Partition;
use osn_graph::CsrGraph;

/// Modularity `Q` of a partition on an unweighted undirected graph:
///
/// `Q = Σ_c [ L_c / m − (d_c / 2m)² ]`
///
/// where `L_c` is the number of intra-community edges, `d_c` the total
/// degree of community `c`, and `m` the number of edges. Returns 0 for an
/// edgeless graph.
///
/// The paper uses network-wide modularity both as Louvain's objective and
/// as the quality axis of the δ sensitivity analysis (Figure 4a), citing
/// the usual `Q ≥ 0.3` rule of thumb for "significant community
/// structure".
pub fn modularity(g: &CsrGraph, p: &Partition) -> f64 {
    assert_eq!(
        g.num_nodes(),
        p.num_nodes(),
        "partition does not cover graph"
    );
    let m = g.num_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let nc = p.num_communities();
    let mut intra = vec![0u64; nc];
    let mut deg = vec![0u64; nc];
    for u in 0..g.num_nodes() as u32 {
        deg[p.community_of(u) as usize] += g.degree(u) as u64;
    }
    for (u, v) in g.edges() {
        if p.community_of(u) == p.community_of(v) {
            intra[p.community_of(u) as usize] += 1;
        }
    }
    let mut q = 0.0;
    for c in 0..nc {
        let lc = intra[c] as f64;
        let dc = deg[c] as f64;
        q += lc / m - (dc / (2.0 * m)).powi(2);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by one bridge edge.
    fn two_triangles() -> CsrGraph {
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn natural_partition_scores_high() {
        let g = two_triangles();
        let p = Partition::from_assignments(&[0, 0, 0, 1, 1, 1]);
        let q = modularity(&g, &p);
        // m=7, each community: 3 intra edges, degree 7.
        let expect = 2.0 * (3.0 / 7.0 - (7.0 / 14.0f64).powi(2));
        assert!((q - expect).abs() < 1e-12);
        assert!(q > 0.3);
    }

    #[test]
    fn all_in_one_community_is_zero() {
        let g = two_triangles();
        let p = Partition::from_assignments(&[0; 6]);
        assert!(modularity(&g, &p).abs() < 1e-12);
    }

    #[test]
    fn singletons_are_negative() {
        let g = two_triangles();
        let p = Partition::singletons(6);
        assert!(modularity(&g, &p) < 0.0);
    }

    #[test]
    fn bad_partition_scores_lower() {
        let g = two_triangles();
        let good = Partition::from_assignments(&[0, 0, 0, 1, 1, 1]);
        let bad = Partition::from_assignments(&[0, 1, 0, 1, 0, 1]);
        assert!(modularity(&g, &good) > modularity(&g, &bad));
    }

    #[test]
    fn edgeless_graph() {
        let g = CsrGraph::from_edges(4, &[]);
        assert_eq!(modularity(&g, &Partition::singletons(4)), 0.0);
    }

    #[test]
    #[should_panic(expected = "partition does not cover")]
    fn size_mismatch_panics() {
        let g = two_triangles();
        modularity(&g, &Partition::singletons(3));
    }
}
