//! # osn-community — community detection and dynamic tracking
//!
//! Implements the community machinery of Section 4 of the paper:
//!
//! * [`partition`] — node→community assignments with renumbering, sizes
//!   and membership extraction.
//! * [`modularity`](mod@modularity) — Newman modularity of a partition on a snapshot.
//! * [`louvain`](mod@louvain) — the Louvain algorithm with an explicit improvement
//!   threshold δ and an **incremental mode** where the previous snapshot's
//!   partition bootstraps the next run (the paper's key trick for stable
//!   tracking, after Blondel et al. 2008 and Greene et al. 2010).
//! * [`similarity`] — Jaccard similarity between communities.
//! * [`events`] — birth / death / merge / split evolution events.
//! * [`tracker`] — drives Louvain over a snapshot sequence, matches
//!   communities across snapshots by best Jaccard overlap, assigns
//!   persistent identities, emits evolution events, and accumulates the
//!   per-community feature histories used by the merge predictor
//!   (Figure 6b).

pub mod events;
pub mod louvain;
pub mod modularity;
pub mod partition;
pub mod similarity;
pub mod state;
pub mod tracker;

pub use events::EvolutionEvent;
pub use louvain::{louvain, LouvainConfig, LouvainResult};
pub use modularity::modularity;
pub use partition::Partition;
pub use similarity::jaccard;
pub use state::TrackerState;
pub use tracker::{
    CommunityRecord, CommunityTracker, SnapshotSummary, TrackerConfig, TrackerOutput,
};
