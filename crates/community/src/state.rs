//! Serialisable tracker state for checkpoint/resume.
//!
//! A [`TrackerState`] captures everything a [`CommunityTracker`] needs to
//! continue after the last observed snapshot *except* the snapshot graph
//! itself, which the resuming side rebuilds by replaying the event log
//! (see `osn_core::checkpoint`). The encoding is a line-based text format
//! with `f64` values stored as the hex of their IEEE-754 bits, so a
//! resumed run is bit-identical to an uninterrupted one.
//!
//! [`CommunityTracker`]: crate::tracker::CommunityTracker

use crate::events::{CommunityId, EvolutionEvent};
use crate::tracker::{CommSnapshotStats, CommunityRecord};
use osn_graph::Day;
use std::fmt::Write as _;

/// Header line of the tracker-state text format.
pub const TRACKER_STATE_MAGIC: &str = "#%osn-tracker v1";

/// A serialisable snapshot of a [`CommunityTracker`](crate::tracker::CommunityTracker)
/// taken between two `observe` calls.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerState {
    /// Day of the last observed snapshot.
    pub last_day: Day,
    /// Next persistent community id to hand out.
    pub next_id: CommunityId,
    /// The last snapshot's full partition (dense, first-appearance
    /// normalised — exactly what Louvain returned).
    pub partition: Vec<u32>,
    /// Persistent id of each tracked community, in the tracker's internal
    /// order (descending size, stable).
    pub comm_ids: Vec<CommunityId>,
    /// All community life histories accumulated so far.
    pub records: Vec<CommunityRecord>,
    /// All evolution events accumulated so far.
    pub events: Vec<EvolutionEvent>,
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bits '{s}'"))
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

fn opt_u32(v: Option<u32>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what} '{s}'"))
}

fn parse_opt_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<Option<T>, String> {
    if s == "-" {
        Ok(None)
    } else {
        parse_num(s, what).map(Some)
    }
}

fn parse_list<T: std::str::FromStr>(s: &str, what: &str) -> Result<Vec<T>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',').map(|tok| parse_num(tok, what)).collect()
}

fn join_list<T: std::fmt::Display>(items: &[T]) -> String {
    if items.is_empty() {
        return "-".to_string();
    }
    let mut out = String::new();
    for (i, x) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out
}

impl TrackerState {
    /// Encode as the stable line-based text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{TRACKER_STATE_MAGIC}");
        let _ = writeln!(out, "last_day {}", self.last_day);
        let _ = writeln!(out, "next_id {}", self.next_id);
        let _ = writeln!(out, "partition {}", join_list(&self.partition));
        let _ = writeln!(out, "comm_ids {}", join_list(&self.comm_ids));
        let _ = writeln!(out, "records {}", self.records.len());
        for r in &self.records {
            let _ = writeln!(
                out,
                "record {} {} {} {} {}",
                r.id,
                r.birth_day,
                opt_u32(r.death_day),
                opt_u64(r.merged_into),
                r.history.len()
            );
            for h in &r.history {
                let _ = writeln!(
                    out,
                    "hist {} {} {} {} {}",
                    h.day,
                    h.size,
                    h.internal_edges,
                    h.degree_sum,
                    f64_hex(h.similarity_to_prev)
                );
            }
        }
        let _ = writeln!(out, "events {}", self.events.len());
        for e in &self.events {
            match e {
                EvolutionEvent::Birth {
                    id,
                    day,
                    size,
                    split_from,
                } => {
                    let _ = writeln!(
                        out,
                        "event birth {id} {day} {size} {}",
                        opt_u64(*split_from)
                    );
                }
                EvolutionEvent::Death {
                    id,
                    day,
                    size,
                    merged_into,
                    strongest_tie,
                    tie_rank,
                } => {
                    let tie = match strongest_tie {
                        None => "-".to_string(),
                        Some(true) => "1".to_string(),
                        Some(false) => "0".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "event death {id} {day} {size} {} {tie} {}",
                        opt_u64(*merged_into),
                        opt_u32(*tie_rank)
                    );
                }
                EvolutionEvent::Split {
                    parent,
                    day,
                    largest,
                    second,
                } => {
                    let _ = writeln!(out, "event split {parent} {day} {largest} {second}");
                }
                EvolutionEvent::Merge {
                    dest,
                    day,
                    largest,
                    second,
                } => {
                    let _ = writeln!(out, "event merge {dest} {day} {largest} {second}");
                }
            }
        }
        out
    }

    /// Decode the text produced by [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default().trim();
        if header != TRACKER_STATE_MAGIC {
            return Err(format!("bad header '{header}'"));
        }
        let mut next = |key: &str| -> Result<String, String> {
            let line = lines
                .next()
                .ok_or_else(|| format!("missing '{key}' line"))?
                .trim();
            let (k, v) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad line '{line}'"))?;
            if k != key {
                return Err(format!("expected '{key}', found '{k}'"));
            }
            Ok(v.to_string())
        };

        let last_day: Day = parse_num(&next("last_day")?, "last_day")?;
        let next_id: CommunityId = parse_num(&next("next_id")?, "next_id")?;
        let partition: Vec<u32> = parse_list(&next("partition")?, "partition label")?;
        let comm_ids: Vec<CommunityId> = parse_list(&next("comm_ids")?, "community id")?;

        let num_records: usize = parse_num(&next("records")?, "record count")?;
        let mut records = Vec::with_capacity(num_records);
        for _ in 0..num_records {
            let v = next("record")?;
            let f: Vec<&str> = v.split_whitespace().collect();
            if f.len() != 5 {
                return Err(format!("bad record line '{v}'"));
            }
            let hist_len: usize = parse_num(f[4], "history length")?;
            let mut history = Vec::with_capacity(hist_len);
            for _ in 0..hist_len {
                let hv = next("hist")?;
                let hf: Vec<&str> = hv.split_whitespace().collect();
                if hf.len() != 5 {
                    return Err(format!("bad hist line '{hv}'"));
                }
                history.push(CommSnapshotStats {
                    day: parse_num(hf[0], "hist day")?,
                    size: parse_num(hf[1], "hist size")?,
                    internal_edges: parse_num(hf[2], "hist internal edges")?,
                    degree_sum: parse_num(hf[3], "hist degree sum")?,
                    similarity_to_prev: parse_f64_hex(hf[4])?,
                });
            }
            records.push(CommunityRecord {
                id: parse_num(f[0], "record id")?,
                birth_day: parse_num(f[1], "birth day")?,
                death_day: parse_opt_num(f[2], "death day")?,
                merged_into: parse_opt_num(f[3], "merged_into")?,
                history,
            });
        }

        let num_events: usize = parse_num(&next("events")?, "event count")?;
        let mut events = Vec::with_capacity(num_events);
        for _ in 0..num_events {
            let v = next("event")?;
            let f: Vec<&str> = v.split_whitespace().collect();
            let event = match f.first().copied() {
                Some("birth") if f.len() == 5 => EvolutionEvent::Birth {
                    id: parse_num(f[1], "birth id")?,
                    day: parse_num(f[2], "birth day")?,
                    size: parse_num(f[3], "birth size")?,
                    split_from: parse_opt_num(f[4], "split_from")?,
                },
                Some("death") if f.len() == 7 => EvolutionEvent::Death {
                    id: parse_num(f[1], "death id")?,
                    day: parse_num(f[2], "death day")?,
                    size: parse_num(f[3], "death size")?,
                    merged_into: parse_opt_num(f[4], "merged_into")?,
                    strongest_tie: match f[5] {
                        "-" => None,
                        "1" => Some(true),
                        "0" => Some(false),
                        other => return Err(format!("bad strongest_tie '{other}'")),
                    },
                    tie_rank: parse_opt_num(f[6], "tie rank")?,
                },
                Some("split") if f.len() == 5 => EvolutionEvent::Split {
                    parent: parse_num(f[1], "split parent")?,
                    day: parse_num(f[2], "split day")?,
                    largest: parse_num(f[3], "split largest")?,
                    second: parse_num(f[4], "split second")?,
                },
                Some("merge") if f.len() == 5 => EvolutionEvent::Merge {
                    dest: parse_num(f[1], "merge dest")?,
                    day: parse_num(f[2], "merge day")?,
                    largest: parse_num(f[3], "merge largest")?,
                    second: parse_num(f[4], "merge second")?,
                },
                _ => return Err(format!("bad event line '{v}'")),
            };
            events.push(event);
        }

        Ok(TrackerState {
            last_day,
            next_id,
            partition,
            comm_ids,
            records,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> TrackerState {
        TrackerState {
            last_day: 42,
            next_id: 7,
            partition: vec![0, 0, 1, 2, 1],
            comm_ids: vec![3, 5],
            records: vec![
                CommunityRecord {
                    id: 3,
                    birth_day: 10,
                    death_day: None,
                    merged_into: None,
                    history: vec![CommSnapshotStats {
                        day: 10,
                        size: 12,
                        internal_edges: 30,
                        degree_sum: 70,
                        similarity_to_prev: 0.0,
                    }],
                },
                CommunityRecord {
                    id: 4,
                    birth_day: 10,
                    death_day: Some(42),
                    merged_into: Some(3),
                    history: vec![CommSnapshotStats {
                        day: 10,
                        size: 11,
                        internal_edges: 25,
                        degree_sum: 61,
                        similarity_to_prev: 0.123_456_789,
                    }],
                },
            ],
            events: vec![
                EvolutionEvent::Birth {
                    id: 3,
                    day: 10,
                    size: 12,
                    split_from: None,
                },
                EvolutionEvent::Birth {
                    id: 4,
                    day: 10,
                    size: 11,
                    split_from: Some(3),
                },
                EvolutionEvent::Merge {
                    dest: 3,
                    day: 42,
                    largest: 12,
                    second: 11,
                },
                EvolutionEvent::Death {
                    id: 4,
                    day: 42,
                    size: 11,
                    merged_into: Some(3),
                    strongest_tie: Some(true),
                    tie_rank: Some(1),
                },
                EvolutionEvent::Split {
                    parent: 3,
                    day: 42,
                    largest: 8,
                    second: 4,
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let state = sample_state();
        let text = state.to_text();
        let back = TrackerState::from_text(&text).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn similarity_bits_roundtrip() {
        let mut state = sample_state();
        state.records[0].history[0].similarity_to_prev = 0.1 + 0.2; // 0.30000000000000004
        let back = TrackerState::from_text(&state.to_text()).unwrap();
        assert_eq!(
            back.records[0].history[0].similarity_to_prev.to_bits(),
            state.records[0].history[0].similarity_to_prev.to_bits()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(TrackerState::from_text("").is_err());
        assert!(TrackerState::from_text("#%osn-tracker v1\nlast_day x\n").is_err());
        let state = sample_state();
        let mut text = state.to_text();
        text.truncate(text.len() / 2);
        assert!(TrackerState::from_text(&text).is_err());
    }

    #[test]
    fn empty_lists_encode_as_dash() {
        let state = TrackerState {
            last_day: 0,
            next_id: 0,
            partition: Vec::new(),
            comm_ids: Vec::new(),
            records: Vec::new(),
            events: Vec::new(),
        };
        let back = TrackerState::from_text(&state.to_text()).unwrap();
        assert_eq!(back, state);
    }
}
