//! Community evolution events.

use osn_graph::Day;

/// A persistent community identity.
pub type CommunityId = u64;

/// An event in the life of tracked communities, as defined in §4.1 of the
/// paper:
///
/// * a community **splits** at snapshot *i* when it is the
///   highest-correlated predecessor of at least two communities at
///   *i + 1*; the most-similar successor keeps its identity, the others
///   are **born**;
/// * at least two communities **merge** when they share the same
///   best successor; the most-similar one keeps its identity, the others
///   **die**;
/// * a community with no overlapping successor **dies** outright; one
///   with no overlapping predecessor is **born** out of nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum EvolutionEvent {
    /// A community appeared that does not continue any previous one.
    Birth {
        /// New persistent id.
        id: CommunityId,
        /// Snapshot day of first appearance.
        day: Day,
        /// Size at birth.
        size: u32,
        /// If the community split off an existing one, that parent.
        split_from: Option<CommunityId>,
    },
    /// A community ceased to exist (its identity was not continued).
    Death {
        /// The dying community.
        id: CommunityId,
        /// Snapshot day at which it no longer exists.
        day: Day,
        /// Its size in the last snapshot it existed in.
        size: u32,
        /// If it merged into a surviving community, that destination.
        merged_into: Option<CommunityId>,
        /// Whether the destination was the community it shared the most
        /// inter-community edges with (`None` when it simply vanished or
        /// the tie could not be evaluated). Figure 6(c) reports this flag
        /// holding ≈99% of the time.
        strongest_tie: Option<bool>,
        /// 1-based rank of the destination among the dying community's
        /// tie counts (1 = strongest tie; `None` when unevaluable). Used
        /// for the paper's merge-destination prediction: even when the
        /// destination is not rank 1, a low rank means inter-community
        /// edge count remains a strong predictor.
        tie_rank: Option<u32>,
    },
    /// A split was observed: `parent` correlates best with ≥2 successors.
    Split {
        /// The splitting community.
        parent: CommunityId,
        /// Snapshot day of the split products.
        day: Day,
        /// Size of the largest product.
        largest: u32,
        /// Size of the second-largest product.
        second: u32,
    },
    /// A merge was observed: ≥2 predecessors correlate best with `dest`.
    Merge {
        /// The surviving community.
        dest: CommunityId,
        /// Snapshot day at which the merged community exists.
        day: Day,
        /// Size of the largest predecessor.
        largest: u32,
        /// Size of the second-largest predecessor.
        second: u32,
    },
}

impl EvolutionEvent {
    /// The day the event was recorded at.
    pub fn day(&self) -> Day {
        match self {
            EvolutionEvent::Birth { day, .. }
            | EvolutionEvent::Death { day, .. }
            | EvolutionEvent::Split { day, .. }
            | EvolutionEvent::Merge { day, .. } => *day,
        }
    }

    /// For [`EvolutionEvent::Merge`] and [`EvolutionEvent::Split`], the
    /// size ratio `second / largest` used by Figure 6(a).
    pub fn size_ratio(&self) -> Option<f64> {
        match self {
            EvolutionEvent::Split {
                largest, second, ..
            }
            | EvolutionEvent::Merge {
                largest, second, ..
            } => {
                if *largest == 0 {
                    None
                } else {
                    Some(*second as f64 / *largest as f64)
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_of_merge() {
        let e = EvolutionEvent::Merge {
            dest: 1,
            day: 10,
            largest: 200,
            second: 1,
        };
        assert_eq!(e.size_ratio(), Some(0.005));
        assert_eq!(e.day(), 10);
    }

    #[test]
    fn ratio_of_birth_is_none() {
        let e = EvolutionEvent::Birth {
            id: 1,
            day: 3,
            size: 12,
            split_from: None,
        };
        assert_eq!(e.size_ratio(), None);
        assert_eq!(e.day(), 3);
    }

    #[test]
    fn zero_largest_guard() {
        let e = EvolutionEvent::Split {
            parent: 1,
            day: 0,
            largest: 0,
            second: 0,
        };
        assert_eq!(e.size_ratio(), None);
    }
}
