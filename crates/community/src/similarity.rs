//! Jaccard similarity between communities.
//!
//! The paper (following Greene et al. 2010) quantifies community overlap
//! across snapshots as "the ratio of common nodes in two communities to
//! the total number of different nodes in both communities" — the Jaccard
//! coefficient.

/// Jaccard coefficient `|A ∩ B| / |A ∪ B|` of two **sorted** member
/// lists. Returns 0 when both are empty.
pub fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    let inter = sorted_intersection_count(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Size of the intersection of two sorted slices.
pub fn sorted_intersection_count(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Jaccard computed from a pre-counted overlap (avoids re-intersecting
/// when overlaps were accumulated in bulk by the tracker).
pub fn jaccard_from_overlap(size_a: usize, size_b: usize, overlap: usize) -> f64 {
    let union = size_a + size_b - overlap;
    if union == 0 {
        0.0
    } else {
        overlap as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // {1,2,3} vs {2,3,4}: inter 2, union 4
        assert_eq!(jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
    }

    #[test]
    fn empty_sets() {
        assert_eq!(jaccard(&[], &[]), 0.0);
        assert_eq!(jaccard(&[1], &[]), 0.0);
    }

    #[test]
    fn overlap_form_matches() {
        let a = [1u32, 2, 3, 7, 9];
        let b = [2u32, 3, 4, 9];
        let inter = sorted_intersection_count(&a, &b);
        assert_eq!(inter, 3);
        assert_eq!(
            jaccard(&a, &b),
            jaccard_from_overlap(a.len(), b.len(), inter)
        );
    }
}
