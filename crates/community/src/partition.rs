//! Node→community assignments.

/// A partition of nodes `0..n` into communities.
///
/// Community labels are dense (`0..num_communities`): every constructor
/// in this crate renumbers labels in order of first appearance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assign: Vec<u32>,
    num_comms: u32,
}

impl Partition {
    /// The singleton partition: every node its own community.
    pub fn singletons(n: usize) -> Self {
        Partition {
            assign: (0..n as u32).collect(),
            num_comms: n as u32,
        }
    }

    /// Build from raw assignments, renumbering labels densely in order of
    /// first appearance.
    pub fn from_assignments(raw: &[u32]) -> Self {
        let mut map = std::collections::HashMap::new();
        let mut assign = Vec::with_capacity(raw.len());
        for &c in raw {
            let next = map.len() as u32;
            let label = *map.entry(c).or_insert(next);
            assign.push(label);
        }
        Partition {
            assign,
            num_comms: map.len() as u32,
        }
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.assign.len()
    }

    /// Number of communities.
    pub fn num_communities(&self) -> usize {
        self.num_comms as usize
    }

    /// The community of `node`.
    pub fn community_of(&self, node: u32) -> u32 {
        self.assign[node as usize]
    }

    /// Raw assignment slice, indexed by node.
    pub fn assignments(&self) -> &[u32] {
        &self.assign
    }

    /// Community sizes, indexed by community label.
    pub fn sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.num_comms as usize];
        for &c in &self.assign {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Members of every community, sorted ascending within each community.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_comms as usize];
        for (node, &c) in self.assign.iter().enumerate() {
            out[c as usize].push(node as u32);
        }
        out
    }

    /// Extend the partition to cover `new_n >= num_nodes()` nodes; the new
    /// nodes become fresh singleton communities. Used to project a
    /// previous snapshot's partition onto a grown graph before an
    /// incremental Louvain run.
    pub fn extended_to(&self, new_n: usize) -> Partition {
        assert!(new_n >= self.assign.len(), "cannot shrink a partition");
        let mut assign = self.assign.clone();
        let mut next = self.num_comms;
        for _ in self.assign.len()..new_n {
            assign.push(next);
            next += 1;
        }
        Partition {
            assign,
            num_comms: next,
        }
    }

    /// Distribution of community sizes as `(size, count)` pairs sorted by
    /// size, considering only communities of at least `min_size` nodes.
    pub fn size_distribution(&self, min_size: u32) -> Vec<(u32, u32)> {
        let mut by_size = std::collections::BTreeMap::new();
        for s in self.sizes() {
            if s >= min_size {
                *by_size.entry(s).or_insert(0u32) += 1;
            }
        }
        by_size.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let p = Partition::singletons(3);
        assert_eq!(p.num_communities(), 3);
        assert_eq!(p.community_of(2), 2);
    }

    #[test]
    fn renumbering() {
        let p = Partition::from_assignments(&[7, 7, 3, 7, 3, 9]);
        assert_eq!(p.num_communities(), 3);
        assert_eq!(p.assignments(), &[0, 0, 1, 0, 1, 2]);
        assert_eq!(p.sizes(), vec![3, 2, 1]);
    }

    #[test]
    fn members_sorted() {
        let p = Partition::from_assignments(&[1, 0, 1, 0]);
        let m = p.members();
        assert_eq!(m[0], vec![0, 2]);
        assert_eq!(m[1], vec![1, 3]);
    }

    #[test]
    fn extension() {
        let p = Partition::from_assignments(&[0, 0, 1]);
        let q = p.extended_to(5);
        assert_eq!(q.num_nodes(), 5);
        assert_eq!(q.num_communities(), 4);
        assert_eq!(q.community_of(3), 2);
        assert_eq!(q.community_of(4), 3);
        // unchanged prefix
        assert_eq!(q.community_of(0), 0);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn extension_cannot_shrink() {
        Partition::singletons(3).extended_to(2);
    }

    #[test]
    fn size_distribution_filters() {
        let p = Partition::from_assignments(&[0, 0, 0, 1, 1, 2]);
        assert_eq!(p.size_distribution(1), vec![(1, 1), (2, 1), (3, 1)]);
        assert_eq!(p.size_distribution(2), vec![(2, 1), (3, 1)]);
    }
}
