//! The Louvain method with an explicit improvement threshold δ and an
//! incremental (warm-start) mode.
//!
//! Louvain (Blondel et al. 2008) alternates two phases: a *local-moving*
//! phase that migrates single nodes between communities while modularity
//! improves, and an *aggregation* phase that collapses each community into
//! one weighted node. The paper's δ parameter bounds both: a local-moving
//! sweep stops once the modularity gained in a full pass drops below δ,
//! and the level loop stops once a whole level gains less than δ. Small δ
//! (1e-4) runs to convergence; large δ (0.3) terminates early, trading
//! modularity for robustness to churn — exactly the trade-off Figure 4
//! sweeps.
//!
//! In **incremental mode** the initial community assignment is the
//! previous snapshot's partition (extended with singleton entries for
//! newly arrived nodes) instead of all-singletons. This both speeds the
//! run up dramatically (the assignment is already near-optimal) and ties
//! community identities across snapshots, which is what makes Jaccard
//! matching in [`crate::tracker`] stable.

use crate::modularity::modularity;
use crate::partition::Partition;
use osn_graph::CsrGraph;
use osn_stats::sampling::{rng_from_seed, shuffle};

/// Tuning parameters for a Louvain run.
#[derive(Debug, Clone, Copy)]
pub struct LouvainConfig {
    /// Improvement threshold δ: a local-moving pass or a whole level that
    /// improves modularity by less than this stops the respective loop.
    pub delta: f64,
    /// Hard cap on aggregation levels (safety bound; convergence normally
    /// happens in ≤ 10 levels).
    pub max_levels: usize,
    /// Hard cap on local-moving sweeps per level.
    pub max_sweeps: usize,
    /// RNG seed controlling node visit order (sweeps shuffle the order, a
    /// standard Louvain detail that avoids pathological orderings).
    pub seed: u64,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        LouvainConfig {
            delta: 0.04,
            max_levels: 20,
            max_sweeps: 50,
            seed: 0,
        }
    }
}

impl LouvainConfig {
    /// Config with a given δ, other fields default.
    pub fn with_delta(delta: f64) -> Self {
        LouvainConfig {
            delta,
            ..Default::default()
        }
    }
}

/// Result of a Louvain run.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// Final node→community partition over the input graph.
    pub partition: Partition,
    /// Modularity of that partition.
    pub modularity: f64,
    /// Number of aggregation levels performed.
    pub levels: usize,
}

/// Weighted multigraph used for aggregated levels.
struct WGraph {
    /// Neighbour lists (no self entries): `(neighbor, weight)`.
    adj: Vec<Vec<(u32, f64)>>,
    /// Self-loop weight per node (counted once).
    self_w: Vec<f64>,
    /// Weighted degree `k_i` (self-loops count twice).
    node_w: Vec<f64>,
    /// Total edge weight `m` (each undirected edge once, self-loops once).
    total_w: f64,
}

impl WGraph {
    fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_nodes();
        let mut adj = vec![Vec::new(); n];
        for u in 0..n as u32 {
            let neigh = g.neighbors(u);
            let mut list = Vec::with_capacity(neigh.len());
            for &v in neigh {
                list.push((v, 1.0));
            }
            adj[u as usize] = list;
        }
        let self_w = vec![0.0; n];
        let node_w: Vec<f64> = adj
            .iter()
            .map(|l| l.iter().map(|&(_, w)| w).sum())
            .collect();
        let total_w = g.num_edges() as f64;
        WGraph {
            adj,
            self_w,
            node_w,
            total_w,
        }
    }

    fn len(&self) -> usize {
        self.adj.len()
    }
}

/// Run Louvain on `g`.
///
/// `init` supplies the warm-start partition (incremental mode); `None`
/// starts from singletons. The returned partition always covers exactly
/// `g.num_nodes()` nodes.
pub fn louvain(g: &CsrGraph, cfg: &LouvainConfig, init: Option<&Partition>) -> LouvainResult {
    let n = g.num_nodes();
    if n == 0 {
        return LouvainResult {
            partition: Partition::singletons(0),
            modularity: 0.0,
            levels: 0,
        };
    }
    let mut rng = rng_from_seed(cfg.seed);
    // node_to_comm[v] maps ORIGINAL node v to its *level node* before each
    // local-moving phase (identity at level 0) and to its community after
    // composing with that phase's result.
    let mut node_to_comm: Vec<u32> = (0..n as u32).collect();

    let mut level_graph = WGraph::from_csr(g);
    // Kept so the final result can never score below the warm start
    // (fragment-and-remerge occasionally lands in a worse optimum).
    let mut warm_backup: Option<Vec<u32>> = None;
    // level_init: initial community of each *level node* — the warm-start
    // partition at level 0 (incremental mode), singletons at deeper levels
    // (the aggregation itself already encodes the grouping).
    let mut level_init: Vec<u32> = match init {
        Some(p) => {
            assert_eq!(p.num_nodes(), n, "init partition must cover the graph");
            // Degree-0 nodes contribute nothing to modularity but would
            // keep stale warm-start labels forever (the tracker would see
            // ghost communities of isolated nodes), so reset them to
            // singletons, then renumber densely.
            let mut raw = p.assignments().to_vec();
            let mut next = raw.iter().copied().max().map_or(0, |m| m + 1);
            for u in 0..n as u32 {
                if g.degree(u) == 0 {
                    raw[u as usize] = next;
                    next += 1;
                }
            }
            let warm_assign = Partition::from_assignments(&raw).assignments().to_vec();
            let warm = warm_assign;
            // Leiden-style refinement: re-cluster each warm-start community
            // internally, starting from singletons with moves constrained to
            // stay inside the community. Neighbour-only local moving cannot
            // split a cohesive-looking community (every single-node exit is
            // modularity-negative), so without this step a warm-started run
            // could never track community splits. The main loop below will
            // re-merge the refined chunks through aggregation whenever that
            // is modularity-positive, so stable communities keep tracking
            // cleanly.
            let (refined, _, _) =
                local_moving(&level_graph, &identity(n), cfg, &mut rng, Some(&warm));
            warm_backup = Some(warm);
            refined
        }
        None => (0..n as u32).collect(),
    };
    let mut levels = 0;
    let mut prev_q = modularity_weighted(&level_graph, &level_init);
    // Warm-started runs must complete at least two levels: the refinement
    // pass above deliberately fragments each warm community into chunks,
    // and only the first aggregation + second local-moving phase can fuse
    // chunks back together (single-node moves cannot cross chunk
    // boundaries profitably). Breaking on δ before that would emit the
    // fragmented partition and make tracking churn.
    let min_levels = if init.is_some() { 2 } else { 1 };

    loop {
        let (assign, moved, q_after) = local_moving(&level_graph, &level_init, cfg, &mut rng, None);

        // Compose: node_to_comm maps original -> level node; `assign` maps
        // level node -> community. After this, original -> community.
        for c in node_to_comm.iter_mut() {
            *c = assign[*c as usize];
        }

        levels += 1;
        let gained = q_after - prev_q;
        prev_q = q_after;
        if (levels >= min_levels && (!moved || gained < cfg.delta)) || levels >= cfg.max_levels {
            break;
        }

        // Aggregate: communities become nodes.
        let (agg, renumber) = aggregate(&level_graph, &assign);
        // Remap original nodes through the renumbering.
        for c in node_to_comm.iter_mut() {
            *c = renumber[*c as usize];
        }
        if agg.len() == level_graph.len() {
            break; // no shrinkage: nothing further to gain
        }
        level_graph = agg;
        level_init = (0..level_graph.len() as u32).collect();
    }

    let partition = Partition::from_assignments(&node_to_comm);
    let q = modularity(g, &partition);
    // Monotonicity guard: a warm-started run must never return something
    // worse than the warm partition itself scored on this graph.
    if let Some(warm) = warm_backup {
        let warm_partition = Partition::from_assignments(&warm);
        let warm_q = modularity(g, &warm_partition);
        if warm_q > q {
            return LouvainResult {
                partition: warm_partition,
                modularity: warm_q,
                levels,
            };
        }
    }
    LouvainResult {
        partition,
        modularity: q,
        levels,
    }
}

/// Weighted modularity of an assignment on a `WGraph`.
fn modularity_weighted(g: &WGraph, assign: &[u32]) -> f64 {
    let two_m = 2.0 * g.total_w;
    if two_m == 0.0 {
        return 0.0;
    }
    let nc = assign.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut sigma_in = vec![0.0; nc]; // doubled intra weight
    let mut sigma_tot = vec![0.0; nc];
    for u in 0..g.len() {
        let cu = assign[u] as usize;
        sigma_tot[cu] += g.node_w[u] + 2.0 * g.self_w[u];
        sigma_in[cu] += 2.0 * g.self_w[u];
        for &(v, w) in &g.adj[u] {
            if assign[v as usize] as usize == cu {
                sigma_in[cu] += w; // each intra edge visited from both sides
            }
        }
    }
    let mut q = 0.0;
    for c in 0..nc {
        q += sigma_in[c] / two_m - (sigma_tot[c] / two_m).powi(2);
    }
    q
}

/// Identity assignment over `n` nodes.
fn identity(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}

/// One complete local-moving phase. Returns the final assignment (labels
/// are arbitrary, not renumbered), whether any node moved, and the
/// modularity after moving.
///
/// When `constraint` is `Some(labels)`, `init` must be the identity
/// (singletons) and a node may only join communities whose members share
/// its constraint label — this is the Leiden-style refinement pass that
/// re-clusters each warm-start community internally.
fn local_moving(
    g: &WGraph,
    init: &[u32],
    cfg: &LouvainConfig,
    rng: &mut rand::rngs::SmallRng,
    constraint: Option<&[u32]>,
) -> (Vec<u32>, bool, f64) {
    let n = g.len();
    let two_m = 2.0 * g.total_w;
    let mut assign = init.to_vec();
    let nc = assign.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut comm_tot = vec![0.0; nc.max(n)];
    for u in 0..n {
        comm_tot[assign[u] as usize] += g.node_w[u] + 2.0 * g.self_w[u];
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut any_moved = false;

    // Scratch: neighbour-community weights, sparse via touched list.
    let mut w_to = vec![0.0f64; comm_tot.len()];
    let mut touched: Vec<u32> = Vec::new();

    // Labels of currently-empty communities, so a node can be *isolated*
    // into a fresh community when leaving its current one is profitable
    // even though no neighbour community is attractive. Without this, a
    // warm-started partition that should split apart is a fixed point of
    // classic neighbour-only local moving.
    let mut free_labels: Vec<u32> = (0..comm_tot.len() as u32)
        .filter(|&c| comm_tot[c as usize] == 0.0)
        .collect();

    // Per-community constraint label (refinement mode only). Communities
    // start as singletons there, so community label u belongs to node u.
    let mut comm_constraint: Vec<u32> = match constraint {
        Some(labels) => {
            debug_assert!(
                init.iter().enumerate().all(|(i, &c)| c as usize == i),
                "refinement requires a singleton init"
            );
            let mut v = labels.to_vec();
            v.resize(comm_tot.len(), u32::MAX);
            v
        }
        None => Vec::new(),
    };

    if two_m == 0.0 {
        let q = modularity_weighted(g, &assign);
        return (assign, false, q);
    }

    for _sweep in 0..cfg.max_sweeps {
        shuffle(&mut order, rng);
        let mut sweep_gain = 0.0;
        let mut moved_this_sweep = false;
        for &u in &order {
            let ui = u as usize;
            let k_u = g.node_w[ui] + 2.0 * g.self_w[ui];
            if g.adj[ui].is_empty() {
                continue;
            }
            let old_c = assign[ui];
            // Collect weights to neighbouring communities (in refinement
            // mode, only communities sharing this node's constraint label
            // are candidates).
            for &(v, w) in &g.adj[ui] {
                let c = assign[v as usize];
                if let Some(labels) = constraint {
                    if comm_constraint[c as usize] != labels[ui] {
                        continue;
                    }
                }
                if w_to[c as usize] == 0.0 {
                    touched.push(c);
                }
                w_to[c as usize] += w;
            }
            // Remove u from its community.
            comm_tot[old_c as usize] -= k_u;
            // Gain of (re-)inserting into community c:
            //   ΔQ(c) = w_to(c)/m' − Σ_tot(c)·k_u/(2m'²)   (×2/two_m form)
            // We evaluate the common form: w_to(c) − Σ_tot(c)·k_u/two_m,
            // which is ΔQ·(two_m/2); consistent across candidates so both
            // the argmax and gain *differences* scale by a constant — we
            // rescale when accumulating sweep_gain.
            let score = |c: u32| w_to[c as usize] - comm_tot[c as usize] * k_u / two_m;
            let mut best_c = old_c;
            let mut best_s = score(old_c);
            for &c in &touched {
                let s = score(c);
                if s > best_s + 1e-12 {
                    best_s = s;
                    best_c = c;
                }
            }
            // Isolating into an empty community scores exactly 0; prefer
            // it when every candidate (including staying) is negative.
            if best_s < -1e-12 {
                while let Some(label) = free_labels.pop() {
                    if comm_tot[label as usize] == 0.0 {
                        best_c = label;
                        best_s = 0.0;
                        if let Some(labels) = constraint {
                            comm_constraint[label as usize] = labels[ui];
                        }
                        break;
                    }
                }
            }
            let old_s = score(old_c);
            comm_tot[best_c as usize] += k_u;
            if best_c != old_c && comm_tot[old_c as usize] == 0.0 {
                free_labels.push(old_c);
            }
            if best_c != old_c {
                assign[ui] = best_c;
                moved_this_sweep = true;
                any_moved = true;
                sweep_gain += (best_s - old_s) * 2.0 / two_m;
            }
            // Clear scratch.
            for &c in &touched {
                w_to[c as usize] = 0.0;
            }
            touched.clear();
        }
        if !moved_this_sweep || sweep_gain < cfg.delta.max(1e-9) {
            break;
        }
    }
    let q = modularity_weighted(g, &assign);
    (assign, any_moved, q)
}

/// Collapse communities into nodes. Returns the aggregated graph and the
/// dense renumbering `old community label -> new node id`.
fn aggregate(g: &WGraph, assign: &[u32]) -> (WGraph, Vec<u32>) {
    let max_label = assign.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut renumber = vec![u32::MAX; max_label];
    let mut next = 0u32;
    for &c in assign {
        if renumber[c as usize] == u32::MAX {
            renumber[c as usize] = next;
            next += 1;
        }
    }
    let nc = next as usize;
    let mut self_w = vec![0.0; nc];
    let mut maps: Vec<std::collections::HashMap<u32, f64>> = vec![Default::default(); nc];
    for u in 0..g.len() {
        let cu = renumber[assign[u] as usize];
        self_w[cu as usize] += g.self_w[u];
        for &(v, w) in &g.adj[u] {
            let cv = renumber[assign[v as usize] as usize];
            if cu == cv {
                // intra edge seen from both endpoints: add half each time
                self_w[cu as usize] += w / 2.0;
            } else {
                *maps[cu as usize].entry(cv).or_insert(0.0) += w;
            }
        }
    }
    let adj: Vec<Vec<(u32, f64)>> = maps
        .into_iter()
        .map(|m| {
            let mut l: Vec<(u32, f64)> = m.into_iter().collect();
            l.sort_unstable_by_key(|&(v, _)| v);
            l
        })
        .collect();
    let node_w: Vec<f64> = adj
        .iter()
        .map(|l| l.iter().map(|&(_, w)| w).sum())
        .collect();
    let total_w = g.total_w;
    (
        WGraph {
            adj,
            self_w,
            node_w,
            total_w,
        },
        renumber,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `k` cliques of `size` nodes, neighbouring cliques joined by one edge.
    fn ring_of_cliques(k: usize, size: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for c in 0..k {
            let base = (c * size) as u32;
            for i in 0..size as u32 {
                for j in (i + 1)..size as u32 {
                    edges.push((base + i, base + j));
                }
            }
            let next_base = (((c + 1) % k) * size) as u32;
            edges.push((base, next_base));
        }
        CsrGraph::from_edges(k * size, &edges)
    }

    #[test]
    fn recovers_planted_cliques() {
        let g = ring_of_cliques(6, 8);
        let cfg = LouvainConfig {
            delta: 1e-6,
            ..Default::default()
        };
        let res = louvain(&g, &cfg, None);
        assert!(res.modularity > 0.6, "modularity {}", res.modularity);
        // Every clique should be one community.
        for c in 0..6 {
            let base = c * 8;
            let label = res.partition.community_of(base as u32);
            for i in 0..8 {
                assert_eq!(res.partition.community_of((base + i) as u32), label);
            }
        }
        assert_eq!(res.partition.num_communities(), 6);
    }

    #[test]
    fn internal_modularity_matches_public() {
        let g = ring_of_cliques(4, 5);
        let res = louvain(&g, &LouvainConfig::with_delta(1e-6), None);
        let q = modularity(&g, &res.partition);
        assert!((q - res.modularity).abs() < 1e-9);
    }

    #[test]
    fn large_delta_terminates_early_with_lower_quality() {
        let g = ring_of_cliques(6, 8);
        let fine = louvain(&g, &LouvainConfig::with_delta(1e-6), None);
        let coarse = louvain(&g, &LouvainConfig::with_delta(0.5), None);
        assert!(coarse.modularity <= fine.modularity + 1e-9);
        assert!(coarse.levels <= fine.levels);
    }

    #[test]
    fn incremental_warm_start_preserves_good_partition() {
        let g = ring_of_cliques(6, 8);
        let fine = louvain(&g, &LouvainConfig::with_delta(1e-6), None);
        // Warm-start from the converged partition: must not degrade.
        let warm = louvain(&g, &LouvainConfig::with_delta(1e-6), Some(&fine.partition));
        assert!(warm.modularity >= fine.modularity - 1e-9);
        assert_eq!(warm.partition.num_communities(), 6);
    }

    #[test]
    fn incremental_handles_grown_graph() {
        let g1 = ring_of_cliques(4, 6);
        let fine = louvain(&g1, &LouvainConfig::with_delta(1e-6), None);
        // Grow: add a new clique of 6 (nodes 24..30) bridged to clique 0.
        let mut edges: Vec<(u32, u32)> = g1.edges().collect();
        for i in 24..30u32 {
            for j in (i + 1)..30 {
                edges.push((i, j));
            }
        }
        edges.push((0, 24));
        let g2 = CsrGraph::from_edges(30, &edges);
        let init = fine.partition.extended_to(30);
        let res = louvain(&g2, &LouvainConfig::with_delta(1e-6), Some(&init));
        assert_eq!(res.partition.num_communities(), 5);
        // New clique forms a single community.
        let label = res.partition.community_of(24);
        for i in 24..30 {
            assert_eq!(res.partition.community_of(i), label);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = ring_of_cliques(5, 7);
        let a = louvain(&g, &LouvainConfig::with_delta(1e-6), None);
        let b = louvain(&g, &LouvainConfig::with_delta(1e-6), None);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.modularity, b.modularity);
    }

    #[test]
    fn empty_and_edgeless() {
        let empty = CsrGraph::from_edges(0, &[]);
        let res = louvain(&empty, &LouvainConfig::default(), None);
        assert_eq!(res.partition.num_nodes(), 0);
        let edgeless = CsrGraph::from_edges(5, &[]);
        let res = louvain(&edgeless, &LouvainConfig::default(), None);
        assert_eq!(res.partition.num_nodes(), 5);
        assert_eq!(res.modularity, 0.0);
    }
}
