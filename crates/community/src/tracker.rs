//! Similarity-based dynamic community tracking.
//!
//! Drives incremental Louvain over a sequence of snapshots and matches
//! communities across consecutive snapshots by best Jaccard overlap,
//! following §4.1 of the paper (itself a modified Greene et al. 2010):
//!
//! 1. run Louvain warm-started from the previous snapshot's partition;
//! 2. keep communities of at least `min_size` nodes (the paper uses 10);
//! 3. for each current community find its best-overlapping predecessor
//!    and for each predecessor its best-overlapping successor;
//! 4. a *mutual best* pair continues the predecessor's persistent
//!    identity; everything else generates birth / death / merge / split
//!    events;
//! 5. a dying community that merges is checked against the
//!    *strongest-tie* hypothesis: did it merge into the community it
//!    shared the most inter-community edges with? (Figure 6c)
//!
//! The tracker also accumulates per-community feature histories (size,
//! in-degree ratio, self-similarity) consumed by the merge predictor of
//! Figure 6(b).

use crate::events::{CommunityId, EvolutionEvent};
use crate::louvain::{louvain, LouvainConfig};
use crate::partition::Partition;
use crate::similarity::jaccard_from_overlap;
use crate::state::TrackerState;
use osn_graph::{CsrGraph, Day};
use std::collections::HashMap;

/// Tracker parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// Minimum community size to track (paper: 10, "to avoid small
    /// cliques").
    pub min_size: u32,
    /// Louvain parameters (δ, seed, caps).
    pub louvain: LouvainConfig,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            min_size: 10,
            louvain: LouvainConfig::default(),
        }
    }
}

/// Per-snapshot statistics of one tracked community.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommSnapshotStats {
    /// Snapshot day.
    pub day: Day,
    /// Member count.
    pub size: u32,
    /// Number of edges with both endpoints inside the community.
    pub internal_edges: u64,
    /// Sum of (full-graph) degrees of the members.
    pub degree_sum: u64,
    /// Jaccard similarity to this community's previous incarnation
    /// (0 at birth).
    pub similarity_to_prev: f64,
}

impl CommSnapshotStats {
    /// The paper's *in-degree ratio*: internal edges over the sum of
    /// member degrees (0 when the community has no incident edges).
    pub fn in_degree_ratio(&self) -> f64 {
        if self.degree_sum == 0 {
            0.0
        } else {
            self.internal_edges as f64 / self.degree_sum as f64
        }
    }
}

/// Life history of one persistent community.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityRecord {
    /// Persistent identity.
    pub id: CommunityId,
    /// Day of first appearance.
    pub birth_day: Day,
    /// Day the community no longer existed (`None` if alive at the end of
    /// the trace — right-censored).
    pub death_day: Option<Day>,
    /// Whether the death was a merge into another community.
    pub merged_into: Option<CommunityId>,
    /// Per-snapshot stats, in snapshot order.
    pub history: Vec<CommSnapshotStats>,
}

impl CommunityRecord {
    /// Lifetime in days; `None` while the community is still alive.
    pub fn lifetime(&self) -> Option<Day> {
        self.death_day.map(|d| d - self.birth_day)
    }
}

/// Summary statistics for one observed snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotSummary {
    /// Snapshot day.
    pub day: Day,
    /// Modularity of the (full) Louvain partition.
    pub modularity: f64,
    /// Number of tracked (≥ `min_size`) communities.
    pub num_tracked: usize,
    /// Mean Jaccard similarity over communities continued from the
    /// previous snapshot (`None` on the first snapshot or when nothing
    /// continued).
    pub avg_similarity: Option<f64>,
    /// Sizes of the tracked communities, descending.
    pub sizes: Vec<u32>,
    /// Fraction of *all* nodes covered by the five largest tracked
    /// communities.
    pub top5_coverage: f64,
}

/// Everything the tracker knows after the last snapshot.
#[derive(Debug, Clone)]
pub struct TrackerOutput {
    /// All community life histories, by persistent id order of creation.
    pub records: Vec<CommunityRecord>,
    /// All evolution events in observation order.
    pub events: Vec<EvolutionEvent>,
    /// Final snapshot's membership: node → persistent community id (only
    /// for nodes inside tracked communities).
    pub final_membership: Vec<Option<CommunityId>>,
    /// Final snapshot's tracked community sizes.
    pub final_sizes: HashMap<CommunityId, u32>,
    /// Day of the last observed snapshot.
    pub last_day: Day,
}

struct PrevComm {
    id: CommunityId,
    members: Vec<u32>, // sorted
}

struct PrevState {
    /// Day of the snapshot this state was taken from.
    day: Day,
    partition: Partition,
    comms: Vec<PrevComm>,
    /// node → index into `comms` (u32::MAX = not in a tracked community)
    node_to_comm: Vec<u32>,
    graph: CsrGraph,
}

/// The dynamic community tracker. Feed snapshots in chronological order
/// with [`CommunityTracker::observe`], then call
/// [`CommunityTracker::finish`].
pub struct CommunityTracker {
    cfg: TrackerConfig,
    prev: Option<PrevState>,
    records: Vec<CommunityRecord>,
    id_to_record: HashMap<CommunityId, usize>,
    events: Vec<EvolutionEvent>,
    next_id: CommunityId,
}

impl CommunityTracker {
    /// Create a tracker.
    pub fn new(cfg: TrackerConfig) -> Self {
        CommunityTracker {
            cfg,
            prev: None,
            records: Vec::new(),
            id_to_record: HashMap::new(),
            events: Vec::new(),
            next_id: 0,
        }
    }

    fn fresh_id(&mut self) -> CommunityId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Observe the snapshot for `day`. Snapshots must be fed in strictly
    /// increasing day order and must only ever grow (nodes are never
    /// removed from the trace).
    pub fn observe(&mut self, day: Day, g: &CsrGraph) -> SnapshotSummary {
        let n = g.num_nodes();
        let init = self.prev.as_ref().map(|p| p.partition.extended_to(n));
        let res = louvain(g, &self.cfg.louvain, init.as_ref());
        let partition = res.partition;

        // Filter tracked communities.
        let mut comms: Vec<Vec<u32>> = partition
            .members()
            .into_iter()
            .filter(|m| m.len() >= self.cfg.min_size as usize)
            .collect();
        comms.sort_by_key(|m| std::cmp::Reverse(m.len()));
        let mut node_to_comm = vec![u32::MAX; n];
        for (i, m) in comms.iter().enumerate() {
            for &v in m {
                node_to_comm[v as usize] = i as u32;
            }
        }

        // Internal edge / degree sums per tracked community.
        let mut internal = vec![0u64; comms.len()];
        let mut degsum = vec![0u64; comms.len()];
        for (i, m) in comms.iter().enumerate() {
            for &v in m {
                degsum[i] += g.degree(v) as u64;
                for &w in g.neighbors(v) {
                    if w > v && node_to_comm[w as usize] == i as u32 {
                        internal[i] += 1;
                    }
                }
            }
        }

        // Match against previous snapshot.
        let mut assigned_ids: Vec<Option<CommunityId>> = vec![None; comms.len()];
        let mut similarity: Vec<f64> = vec![0.0; comms.len()];
        let mut avg_similarity = None;

        if let Some(prev) = self.prev.take() {
            // Overlap counts (cur, prev) -> count.
            let mut overlaps: HashMap<(u32, u32), u32> = HashMap::new();
            for (ci, m) in comms.iter().enumerate() {
                for &v in m {
                    if let Some(&p) = prev.node_to_comm.get(v as usize) {
                        if p != u32::MAX {
                            *overlaps.entry((ci as u32, p)).or_insert(0) += 1;
                        }
                    }
                }
            }
            // Best predecessor per cur; best successor per prev. For the
            // successor we also keep the *absorbed fraction* — the share
            // of the predecessor's members that moved into that successor
            // — because the paper only calls a death a "merge" when a
            // community contributes most of its nodes to the destination.
            let mut best_prev: Vec<Option<(u32, f64)>> = vec![None; comms.len()];
            let mut best_succ: Vec<Option<(u32, f64, f64)>> = vec![None; prev.comms.len()];
            for (&(c, p), &ov) in &overlaps {
                let psize = prev.comms[p as usize].members.len();
                let jac = jaccard_from_overlap(comms[c as usize].len(), psize, ov as usize);
                let absorbed = ov as f64 / psize as f64;
                if best_prev[c as usize].is_none_or(|(_, j)| jac > j) {
                    best_prev[c as usize] = Some((p, jac));
                }
                if best_succ[p as usize].is_none_or(|(_, j, _)| jac > j) {
                    best_succ[p as usize] = Some((c, jac, absorbed));
                }
            }

            // Mutual-best pairs continue identities.
            let mut continued_into: Vec<Option<u32>> = vec![None; prev.comms.len()];
            let mut sims = Vec::new();
            for c in 0..comms.len() {
                if let Some((p, jac)) = best_prev[c] {
                    if let Some((c2, _, _)) = best_succ[p as usize] {
                        if c2 as usize == c {
                            assigned_ids[c] = Some(prev.comms[p as usize].id);
                            similarity[c] = jac;
                            continued_into[p as usize] = Some(c as u32);
                            sims.push(jac);
                        }
                    }
                }
            }
            if !sims.is_empty() {
                avg_similarity = Some(sims.iter().sum::<f64>() / sims.len() as f64);
            }

            // Births (with split_from attribution).
            for c in 0..comms.len() {
                if assigned_ids[c].is_none() {
                    let id = self.fresh_id();
                    assigned_ids[c] = Some(id);
                    let split_from = best_prev[c].map(|(p, _)| prev.comms[p as usize].id);
                    self.events.push(EvolutionEvent::Birth {
                        id,
                        day,
                        size: comms[c].len() as u32,
                        split_from,
                    });
                    self.id_to_record.insert(id, self.records.len());
                    self.records.push(CommunityRecord {
                        id,
                        birth_day: day,
                        death_day: None,
                        merged_into: None,
                        history: Vec::new(),
                    });
                }
            }

            // Split events: predecessor that is best-prev of ≥2 successors.
            let mut split_children: HashMap<u32, Vec<u32>> = HashMap::new();
            for (c, bp) in best_prev.iter().enumerate() {
                if let Some((p, _)) = bp {
                    split_children.entry(*p).or_default().push(c as u32);
                }
            }
            for (&p, children) in &split_children {
                if children.len() >= 2 {
                    let mut sizes: Vec<u32> = children
                        .iter()
                        .map(|&c| comms[c as usize].len() as u32)
                        .collect();
                    sizes.sort_unstable_by(|a, b| b.cmp(a));
                    self.events.push(EvolutionEvent::Split {
                        parent: prev.comms[p as usize].id,
                        day,
                        largest: sizes[0],
                        second: sizes[1],
                    });
                }
            }

            // Merge events: one per merged *pair* (the paper analyses
            // merged community pairs). A pair is a dying predecessor that
            // contributes most of its nodes to a successor that itself
            // continues another predecessor — i.e. a genuine absorption.
            for p in 0..prev.comms.len() {
                if continued_into[p].is_some() {
                    continue; // survivors are destinations, not sources
                }
                if let Some((c, _, absorbed)) = best_succ[p] {
                    if absorbed < 0.5 {
                        continue;
                    }
                    let Some(q) = (0..prev.comms.len()).find(|&q| continued_into[q] == Some(c))
                    else {
                        continue;
                    };
                    let sp = prev.comms[p].members.len() as u32;
                    let sq = prev.comms[q].members.len() as u32;
                    self.events.push(EvolutionEvent::Merge {
                        dest: assigned_ids[c as usize].expect("assigned above"),
                        day,
                        largest: sp.max(sq),
                        second: sp.min(sq),
                    });
                }
            }

            // Deaths + strongest-tie evaluation.
            for p in 0..prev.comms.len() {
                if continued_into[p].is_some() {
                    continue;
                }
                let id = prev.comms[p].id;
                let (merged_into, tie_rank) = match best_succ[p] {
                    // A death is a *merge* only when most of the dying
                    // community's members moved into the destination
                    // (§4.1: communities "contribute most of their nodes").
                    Some((c, _, absorbed)) if absorbed >= 0.5 => {
                        let dest_id = assigned_ids[c as usize];
                        // Which previous community continued into c?
                        let dest_prev =
                            (0..prev.comms.len()).find(|&q| continued_into[q] == Some(c));
                        let rank = dest_prev.and_then(|q| destination_tie_rank(&prev, p, q));
                        (dest_id, rank)
                    }
                    _ => (None, None),
                };
                self.events.push(EvolutionEvent::Death {
                    id,
                    day,
                    size: prev.comms[p].members.len() as u32,
                    merged_into,
                    strongest_tie: tie_rank.map(|r| r == 1),
                    tie_rank,
                });
                if let Some(&ri) = self.id_to_record.get(&id) {
                    self.records[ri].death_day = Some(day);
                    self.records[ri].merged_into = merged_into;
                }
            }
        } else {
            // First snapshot: everything is born.
            for c in 0..comms.len() {
                let id = self.fresh_id();
                assigned_ids[c] = Some(id);
                self.events.push(EvolutionEvent::Birth {
                    id,
                    day,
                    size: comms[c].len() as u32,
                    split_from: None,
                });
                self.id_to_record.insert(id, self.records.len());
                self.records.push(CommunityRecord {
                    id,
                    birth_day: day,
                    death_day: None,
                    merged_into: None,
                    history: Vec::new(),
                });
            }
        }

        // Append history entries.
        for c in 0..comms.len() {
            let id = assigned_ids[c].expect("all communities assigned");
            let ri = self.id_to_record[&id];
            self.records[ri].history.push(CommSnapshotStats {
                day,
                size: comms[c].len() as u32,
                internal_edges: internal[c],
                degree_sum: degsum[c],
                similarity_to_prev: similarity[c],
            });
        }

        // Summary.
        let mut sizes: Vec<u32> = comms.iter().map(|m| m.len() as u32).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let top5: u64 = sizes.iter().take(5).map(|&s| s as u64).sum();
        let summary = SnapshotSummary {
            day,
            modularity: res.modularity,
            num_tracked: comms.len(),
            avg_similarity,
            sizes: sizes.clone(),
            top5_coverage: if n == 0 { 0.0 } else { top5 as f64 / n as f64 },
        };

        // Store state for the next snapshot.
        let prev_comms: Vec<PrevComm> = comms
            .into_iter()
            .enumerate()
            .map(|(i, members)| PrevComm {
                id: assigned_ids[i].expect("assigned"),
                members,
            })
            .collect();
        self.prev = Some(PrevState {
            day,
            partition,
            comms: prev_comms,
            node_to_comm,
            graph: g.clone(),
        });
        summary
    }

    /// Export everything needed to resume tracking after the last observed
    /// snapshot, except the snapshot graph itself (which the resuming side
    /// rebuilds by replaying the event log). Returns `None` before the
    /// first `observe` call — there is nothing to resume from yet.
    pub fn export_state(&self) -> Option<TrackerState> {
        let prev = self.prev.as_ref()?;
        Some(TrackerState {
            last_day: prev.day,
            next_id: self.next_id,
            partition: prev.partition.assignments().to_vec(),
            comm_ids: prev.comms.iter().map(|c| c.id).collect(),
            records: self.records.clone(),
            events: self.events.clone(),
        })
    }

    /// Rebuild a tracker from an exported state and the snapshot graph of
    /// `state.last_day` (the caller re-materialises it by replaying the
    /// event log through that day). The restored tracker continues exactly
    /// where the exporting one stopped: feeding both the same subsequent
    /// snapshots produces identical summaries, records and events.
    pub fn restore(
        cfg: TrackerConfig,
        state: TrackerState,
        graph: CsrGraph,
    ) -> Result<Self, String> {
        let n = graph.num_nodes();
        if state.partition.len() != n {
            return Err(format!(
                "tracker state covers {} nodes but the day-{} snapshot has {n}",
                state.partition.len(),
                state.last_day
            ));
        }
        // Louvain partitions are already dense and first-appearance
        // normalised, so this reconstruction is exact.
        let partition = Partition::from_assignments(&state.partition);
        if partition.assignments() != state.partition.as_slice() {
            return Err("tracker state partition is not normalised".to_string());
        }
        // Re-derive tracked communities the same way `observe` does.
        let mut comms: Vec<Vec<u32>> = partition
            .members()
            .into_iter()
            .filter(|m| m.len() >= cfg.min_size as usize)
            .collect();
        comms.sort_by_key(|m| std::cmp::Reverse(m.len()));
        if comms.len() != state.comm_ids.len() {
            return Err(format!(
                "tracker state lists {} tracked communities but the partition yields {} \
                 (min_size changed between runs?)",
                state.comm_ids.len(),
                comms.len()
            ));
        }
        let mut node_to_comm = vec![u32::MAX; n];
        for (i, m) in comms.iter().enumerate() {
            for &v in m {
                node_to_comm[v as usize] = i as u32;
            }
        }
        let mut id_to_record = HashMap::new();
        for (i, r) in state.records.iter().enumerate() {
            id_to_record.insert(r.id, i);
        }
        for &id in &state.comm_ids {
            if !id_to_record.contains_key(&id) {
                return Err(format!("tracked community {id} has no record"));
            }
        }
        let prev_comms: Vec<PrevComm> = state
            .comm_ids
            .iter()
            .zip(comms)
            .map(|(&id, members)| PrevComm { id, members })
            .collect();
        Ok(CommunityTracker {
            cfg,
            prev: Some(PrevState {
                day: state.last_day,
                partition,
                comms: prev_comms,
                node_to_comm,
                graph,
            }),
            records: state.records,
            id_to_record,
            events: state.events,
            next_id: state.next_id,
        })
    }

    /// Consume the tracker and return all accumulated histories/events.
    pub fn finish(self) -> TrackerOutput {
        let (final_membership, final_sizes, last_day) = match &self.prev {
            Some(prev) => {
                let mut membership = vec![None; prev.node_to_comm.len()];
                let mut sizes = HashMap::new();
                for comm in &prev.comms {
                    sizes.insert(comm.id, comm.members.len() as u32);
                    for &v in &comm.members {
                        membership[v as usize] = Some(comm.id);
                    }
                }
                (membership, sizes, prev.graph.taken_at().day())
            }
            None => (Vec::new(), HashMap::new(), 0),
        };
        TrackerOutput {
            records: self.records,
            events: self.events,
            final_membership,
            final_sizes,
            last_day,
        }
    }
}

/// Rank (1-based) of destination `q` among the tie counts of dying
/// community `p`: rank 1 means `q` receives the largest number of edges
/// from `p`'s members — the paper's strongest-tie rule. `None` when `p`
/// has no edge to `q` at all.
fn destination_tie_rank(prev: &PrevState, p: usize, q: usize) -> Option<u32> {
    let mut ties: HashMap<u32, u64> = HashMap::new();
    for &v in &prev.comms[p].members {
        for &w in prev.graph.neighbors(v) {
            let c = prev.node_to_comm[w as usize];
            if c != u32::MAX && c as usize != p {
                *ties.entry(c).or_insert(0) += 1;
            }
        }
    }
    let q_tie = ties.get(&(q as u32)).copied().unwrap_or(0);
    if std::env::var_os("OSN_TIE_DEBUG").is_some() {
        let mut top: Vec<(u32, u64)> = ties.iter().map(|(&c, &t)| (c, t)).collect();
        top.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
        top.truncate(4);
        eprintln!(
            "tie-debug: p={} (size {}) merged into q={} (size {}) q_tie={} top={:?}",
            p,
            prev.comms[p].members.len(),
            q,
            prev.comms[q].members.len(),
            q_tie,
            top,
        );
    }
    if q_tie == 0 {
        return None;
    }
    let rank = 1 + ties.values().filter(|&&t| t > q_tie).count() as u32;
    Some(rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_edges(base: u32, size: u32, edges: &mut Vec<(u32, u32)>) {
        for i in 0..size {
            for j in (i + 1)..size {
                edges.push((base + i, base + j));
            }
        }
    }

    fn cfg() -> TrackerConfig {
        TrackerConfig {
            min_size: 5,
            louvain: LouvainConfig::with_delta(1e-6),
        }
    }

    #[test]
    fn stable_communities_continue() {
        // Two 10-cliques, stable across two snapshots (plus growth noise).
        let mut edges = Vec::new();
        clique_edges(0, 10, &mut edges);
        clique_edges(10, 10, &mut edges);
        edges.push((0, 10));
        let g1 = CsrGraph::from_edges(20, &edges);
        let mut tracker = CommunityTracker::new(cfg());
        let s1 = tracker.observe(0, &g1);
        assert_eq!(s1.num_tracked, 2);
        assert!(s1.avg_similarity.is_none());

        // Snapshot 2: same structure plus two extra members of clique 0.
        let mut edges2 = edges.clone();
        for i in 0..10 {
            edges2.push((20, i));
            edges2.push((21, i));
        }
        let g2 = CsrGraph::from_edges(22, &edges2);
        let s2 = tracker.observe(3, &g2);
        assert_eq!(s2.num_tracked, 2);
        let sim = s2.avg_similarity.unwrap();
        assert!(sim > 0.8, "similarity {sim}");

        let out = tracker.finish();
        // Two identities, both alive.
        assert_eq!(out.records.len(), 2);
        assert!(out.records.iter().all(|r| r.death_day.is_none()));
        assert!(out.records.iter().all(|r| r.history.len() == 2));
        // No deaths/merges/splits; 2 births at day 0.
        let births = out
            .events
            .iter()
            .filter(|e| matches!(e, EvolutionEvent::Birth { .. }))
            .count();
        assert_eq!(births, 2);
        assert_eq!(out.events.len(), 2);
        assert_eq!(out.last_day, 0); // graph taken_at was Time::ZERO in from_edges
    }

    #[test]
    fn merge_is_detected_with_strongest_tie() {
        // Snapshot 1: cliques A (0..10) and B (10..16), connected by 2 edges.
        let mut edges = Vec::new();
        clique_edges(0, 10, &mut edges);
        clique_edges(10, 6, &mut edges);
        edges.push((0, 10));
        edges.push((1, 11));
        let g1 = CsrGraph::from_edges(16, &edges);
        let mut tracker = CommunityTracker::new(cfg());
        let s1 = tracker.observe(0, &g1);
        assert_eq!(s1.num_tracked, 2);

        // Snapshot 2: B's members fully join A (every B node connects to
        // every A node) — Louvain now sees one community.
        let mut edges2 = edges.clone();
        for b in 10..16u32 {
            for a in 0..10u32 {
                if !edges2.contains(&(a, b)) {
                    edges2.push((a, b));
                }
            }
        }
        let g2 = CsrGraph::from_edges(16, &edges2);
        let s2 = tracker.observe(3, &g2);
        assert_eq!(s2.num_tracked, 1);

        let out = tracker.finish();
        let deaths: Vec<_> = out
            .events
            .iter()
            .filter_map(|e| match e {
                EvolutionEvent::Death {
                    merged_into,
                    strongest_tie,
                    size,
                    ..
                } => Some((*merged_into, *strongest_tie, *size)),
                _ => None,
            })
            .collect();
        assert_eq!(deaths.len(), 1);
        let (merged_into, tie, size) = deaths[0];
        assert!(merged_into.is_some());
        assert_eq!(size, 6);
        assert_eq!(tie, Some(true));
        // A merge event with sizes 10 and 6 was recorded.
        let merges: Vec<_> = out
            .events
            .iter()
            .filter_map(|e| match e {
                EvolutionEvent::Merge {
                    largest, second, ..
                } => Some((*largest, *second)),
                _ => None,
            })
            .collect();
        assert_eq!(merges, vec![(10, 6)]);
        // The dead record has a lifetime.
        let dead = out.records.iter().find(|r| r.death_day.is_some()).unwrap();
        assert_eq!(dead.lifetime(), Some(3));
    }

    #[test]
    fn split_is_detected() {
        // Snapshot 1: one 16-clique.
        let mut edges = Vec::new();
        clique_edges(0, 16, &mut edges);
        let g1 = CsrGraph::from_edges(16, &edges);
        let mut tracker = CommunityTracker::new(cfg());
        let s1 = tracker.observe(0, &g1);
        assert_eq!(s1.num_tracked, 1);

        // Snapshot 2: the clique decomposes into two 8-cliques with a
        // single bridge.
        let mut edges2 = Vec::new();
        clique_edges(0, 8, &mut edges2);
        clique_edges(8, 8, &mut edges2);
        edges2.push((0, 8));
        let g2 = CsrGraph::from_edges(16, &edges2);
        let s2 = tracker.observe(3, &g2);
        assert_eq!(s2.num_tracked, 2);

        let out = tracker.finish();
        let splits: Vec<_> = out
            .events
            .iter()
            .filter_map(|e| match e {
                EvolutionEvent::Split {
                    largest, second, ..
                } => Some((*largest, *second)),
                _ => None,
            })
            .collect();
        assert_eq!(splits, vec![(8, 8)]);
        // One child continues the identity, one is born with split_from set.
        let split_births: Vec<_> = out
            .events
            .iter()
            .filter_map(|e| match e {
                EvolutionEvent::Birth {
                    split_from: Some(p),
                    day: 3,
                    ..
                } => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(split_births.len(), 1);
    }

    #[test]
    fn vanished_community_dies_without_merge() {
        let mut edges = Vec::new();
        clique_edges(0, 8, &mut edges);
        clique_edges(8, 8, &mut edges);
        let g1 = CsrGraph::from_edges(16, &edges);
        let mut tracker = CommunityTracker::new(cfg());
        tracker.observe(0, &g1);
        // Snapshot 2: second clique's nodes become isolated (degree 0 —
        // below min_size tracking), first clique persists.
        let mut edges2 = Vec::new();
        clique_edges(0, 8, &mut edges2);
        let g2 = CsrGraph::from_edges(16, &edges2);
        tracker.observe(3, &g2);
        let out = tracker.finish();
        let deaths: Vec<_> = out
            .events
            .iter()
            .filter_map(|e| match e {
                EvolutionEvent::Death { merged_into, .. } => Some(*merged_into),
                _ => None,
            })
            .collect();
        assert_eq!(deaths, vec![None]);
    }

    #[test]
    fn final_membership_reflects_last_snapshot() {
        let mut edges = Vec::new();
        clique_edges(0, 8, &mut edges);
        let g = CsrGraph::from_edges(10, &edges);
        let mut tracker = CommunityTracker::new(cfg());
        tracker.observe(0, &g);
        let out = tracker.finish();
        assert_eq!(out.final_membership.len(), 10);
        assert!(out.final_membership[0].is_some());
        assert!(out.final_membership[9].is_none()); // isolated
        assert_eq!(out.final_sizes.len(), 1);
        assert_eq!(*out.final_sizes.values().next().unwrap(), 8);
    }

    #[test]
    fn in_degree_ratio_computed() {
        let mut edges = Vec::new();
        clique_edges(0, 6, &mut edges);
        let g = CsrGraph::from_edges(6, &edges);
        let mut tracker = CommunityTracker::new(cfg());
        tracker.observe(0, &g);
        let out = tracker.finish();
        let h = &out.records[0].history[0];
        assert_eq!(h.size, 6);
        assert_eq!(h.internal_edges, 15);
        assert_eq!(h.degree_sum, 30);
        assert!((h.in_degree_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn export_restore_resumes_identically() {
        // Build two snapshots; export after the first, restore, and check
        // that the resumed tracker's second observation matches the
        // uninterrupted run exactly.
        let mut edges = Vec::new();
        clique_edges(0, 10, &mut edges);
        clique_edges(10, 10, &mut edges);
        edges.push((0, 10));
        let g1 = CsrGraph::from_edges(20, &edges);
        let mut edges2 = edges.clone();
        for i in 0..10 {
            edges2.push((20, i));
        }
        clique_edges(21, 6, &mut edges2);
        let g2 = CsrGraph::from_edges(27, &edges2);

        let mut full = CommunityTracker::new(cfg());
        full.observe(0, &g1);
        let state = full.export_state().expect("state after first observe");
        let s_full = full.observe(3, &g2);

        let mut resumed = CommunityTracker::restore(cfg(), state, g1.clone()).expect("restore");
        let s_res = resumed.observe(3, &g2);
        assert_eq!(s_res.num_tracked, s_full.num_tracked);
        assert_eq!(s_res.modularity.to_bits(), s_full.modularity.to_bits());
        assert_eq!(s_res.sizes, s_full.sizes);
        assert_eq!(s_res.avg_similarity, s_full.avg_similarity);

        let out_full = full.finish();
        let out_res = resumed.finish();
        assert_eq!(out_res.records.len(), out_full.records.len());
        for (a, b) in out_res.records.iter().zip(&out_full.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.birth_day, b.birth_day);
            assert_eq!(a.death_day, b.death_day);
            assert_eq!(a.history, b.history);
        }
        assert_eq!(out_res.events, out_full.events);
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        let mut edges = Vec::new();
        clique_edges(0, 10, &mut edges);
        let g = CsrGraph::from_edges(10, &edges);
        let mut tracker = CommunityTracker::new(cfg());
        tracker.observe(0, &g);
        let state = tracker.export_state().unwrap();
        assert!(tracker.export_state().is_some());
        // Wrong graph size.
        let small = CsrGraph::from_edges(3, &[(0, 1)]);
        assert!(CommunityTracker::restore(cfg(), state.clone(), small).is_err());
        // min_size changed: community count no longer matches.
        let mut strict = cfg();
        strict.min_size = 100;
        assert!(CommunityTracker::restore(strict, state, g).is_err());
        // Nothing observed yet: nothing to export.
        assert!(CommunityTracker::new(cfg()).export_state().is_none());
    }

    #[test]
    fn empty_tracker_finishes() {
        let tracker = CommunityTracker::new(cfg());
        let out = tracker.finish();
        assert!(out.records.is_empty());
        assert!(out.final_membership.is_empty());
    }
}
