//! Plain-text (de)serialisation of event logs.
//!
//! Format: one event per line.
//!
//! ```text
//! # comment lines start with '#'
//! N <seconds> <origin>        # node arrival; ids are implicit (dense)
//! E <seconds> <u> <v>         # edge arrival
//! ```
//!
//! The format is deliberately trivial: it exists so generated traces can be
//! cached on disk and re-analysed without re-running the generator, and so
//! external tools (gnuplot, pandas) can consume them. Origins are encoded
//! as `core`, `competitor`, `postmerge`.

use crate::event::Origin;
use crate::log::{EventLog, EventLogBuilder, LogError};
use crate::time::{NodeId, Time};
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Errors raised while parsing a textual event log.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        reason: String,
    },
    /// The parsed events violated an [`EventLog`] invariant.
    Invalid(LogError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::Invalid(e) => write!(f, "invalid log: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<LogError> for ParseError {
    fn from(e: LogError) -> Self {
        ParseError::Invalid(e)
    }
}

fn origin_token(o: Origin) -> &'static str {
    o.label()
}

fn parse_origin(tok: &str, line: usize) -> Result<Origin, ParseError> {
    match tok {
        "core" => Ok(Origin::Core),
        "competitor" => Ok(Origin::Competitor),
        "postmerge" => Ok(Origin::PostMerge),
        other => Err(ParseError::Malformed {
            line,
            reason: format!("unknown origin '{other}'"),
        }),
    }
}

/// Write a log in the plain-text format.
pub fn write_log<W: Write>(log: &EventLog, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# multiscale-osn event log: {} nodes, {} edges, {} days",
        log.num_nodes(),
        log.num_edges(),
        log.end_day() + 1
    )?;
    for e in log.events() {
        match e.kind {
            crate::event::EventKind::AddNode { origin, .. } => {
                writeln!(w, "N {} {}", e.time.seconds(), origin_token(origin))?;
            }
            crate::event::EventKind::AddEdge { u, v } => {
                writeln!(w, "E {} {} {}", e.time.seconds(), u.0, v.0)?;
            }
        }
    }
    w.flush()
}

/// Read a log in the plain-text format.
pub fn read_log<R: Read>(reader: R) -> Result<EventLog, ParseError> {
    let r = BufReader::new(reader);
    let mut b = EventLogBuilder::new();
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().unwrap_or_default();
        let malformed = |reason: &str| ParseError::Malformed {
            line: lineno,
            reason: reason.to_string(),
        };
        let secs: u64 = parts
            .next()
            .ok_or_else(|| malformed("missing timestamp"))?
            .parse()
            .map_err(|_| malformed("bad timestamp"))?;
        match tag {
            "N" => {
                let origin = parse_origin(
                    parts.next().ok_or_else(|| malformed("missing origin"))?,
                    lineno,
                )?;
                b.add_node(Time(secs), origin)?;
            }
            "E" => {
                let u: u32 = parts
                    .next()
                    .ok_or_else(|| malformed("missing endpoint u"))?
                    .parse()
                    .map_err(|_| malformed("bad endpoint u"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| malformed("missing endpoint v"))?
                    .parse()
                    .map_err(|_| malformed("bad endpoint v"))?;
                b.add_edge(Time(secs), NodeId(u), NodeId(v))?;
            }
            other => {
                return Err(malformed(&format!("unknown record tag '{other}'")));
            }
        }
        if parts.next().is_some() {
            return Err(malformed("trailing tokens"));
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn sample() -> EventLog {
        let mut b = EventLogBuilder::new();
        let a = b.add_node(Time(0), Origin::Core).unwrap();
        let c = b.add_node(Time(5), Origin::Competitor).unwrap();
        let d = b.add_node(Time(9), Origin::PostMerge).unwrap();
        b.add_edge(Time(10), a, c).unwrap();
        b.add_edge(Time(12), d, a).unwrap();
        b.build()
    }

    #[test]
    fn roundtrip() {
        let log = sample();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let parsed = read_log(&buf[..]).unwrap();
        assert_eq!(parsed.num_nodes(), log.num_nodes());
        assert_eq!(parsed.num_edges(), log.num_edges());
        assert_eq!(parsed.events().len(), log.events().len());
        for (a, b) in parsed.events().iter().zip(log.events()) {
            assert_eq!(a.time, b.time);
            match (a.kind, b.kind) {
                (EventKind::AddNode { origin: oa, .. }, EventKind::AddNode { origin: ob, .. }) => {
                    assert_eq!(oa, ob)
                }
                (EventKind::AddEdge { u: ua, v: va }, EventKind::AddEdge { u: ub, v: vb }) => {
                    assert_eq!((ua, va), (ub, vb))
                }
                _ => panic!("kind mismatch"),
            }
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\nN 0 core\nN 1 core\nE 2 0 1\n";
        let log = read_log(text.as_bytes()).unwrap();
        assert_eq!(log.num_nodes(), 2);
        assert_eq!(log.num_edges(), 1);
    }

    #[test]
    fn bad_tag_rejected() {
        let err = read_log("X 0 core\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 1, .. }));
    }

    #[test]
    fn bad_origin_rejected() {
        let err = read_log("N 0 martian\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown origin"));
    }

    #[test]
    fn invalid_log_rejected() {
        // edge before nodes exist
        let err = read_log("E 0 0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = read_log("N 0 core extra\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }
}
