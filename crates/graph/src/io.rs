//! Plain-text (de)serialisation of event logs.
//!
//! # Format v1
//!
//! One event per line:
//!
//! ```text
//! # comment lines start with '#'
//! N <seconds> <origin>        # node arrival; ids are implicit (dense)
//! E <seconds> <u> <v>         # edge arrival
//! ```
//!
//! The format is deliberately trivial: it exists so generated traces can be
//! cached on disk and re-analysed without re-running the generator, and so
//! external tools (gnuplot, pandas) can consume them. Origins are encoded
//! as `core`, `competitor`, `postmerge`.
//!
//! # Format v2
//!
//! v2 keeps the event lines byte-identical but frames them with integrity
//! metadata so truncation and bit-flips are detected instead of silently
//! producing a wrong (or differently wrong) analysis:
//!
//! ```text
//! #%osn-events v2
//! # multiscale-osn event log: 3 nodes, 2 edges, 1 days
//! N 0 core
//! E 10 0 1
//! #%chunk lines=2 crc=1a2b3c4d
//! ...more chunks...
//! #%end events=5 crc=5e6f7a8b
//! ```
//!
//! * The first line is the magic [`FORMAT_V2_MAGIC`].
//! * Event lines are grouped into chunks; each chunk is terminated by a
//!   `#%chunk` directive carrying the line count and the CRC-32 of the
//!   chunk's payload (each line's trimmed bytes followed by `\n`).
//! * The `#%end` footer carries the total event count and the CRC-32 over
//!   every payload line in the file. A missing footer means the file was
//!   truncated.
//!
//! Because every directive starts with `#`, a v1 reader that skips
//! comments parses a v2 file correctly (it just cannot verify it), and
//! this module's reader accepts both versions transparently.
//!
//! # Recovery
//!
//! [`read_log_with_policy`] ingests a stream under a [`RecoveryPolicy`]:
//! `Strict` fails on the first problem (this is what [`read_log`] does),
//! `Skip` drops bad lines and corrupt chunks up to an error budget, and
//! `Repair` additionally re-sorts events that were displaced within a
//! bounded time window and drops self-loops / duplicate edges. All
//! recovery modes return an [`IngestReport`] describing exactly what was
//! kept, skipped, and repaired.

use crate::crc32::Crc32;
use crate::event::Origin;
use crate::log::{EventLog, EventLogBuilder, LogError};
use crate::time::{NodeId, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// First line of a v2 trace file.
pub const FORMAT_V2_MAGIC: &str = "#%osn-events v2";

/// Default number of event lines per v2 chunk.
pub const DEFAULT_CHUNK_LINES: usize = 1024;

/// Errors raised while parsing a textual event log.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        reason: String,
    },
    /// The parsed events violated an [`EventLog`] invariant.
    Invalid(LogError),
    /// A v2 integrity check failed (checksum mismatch, missing footer,
    /// bad directive).
    Corrupt {
        /// 1-based line number of the failed check.
        line: usize,
        /// Description of what went wrong.
        reason: String,
    },
    /// Recovery under [`RecoveryPolicy::Skip`] exceeded its error budget.
    TooManyErrors {
        /// Number of errors encountered.
        errors: usize,
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::Invalid(e) => write!(f, "invalid log: {e}"),
            ParseError::Corrupt { line, reason } => write!(f, "line {line}: corrupt: {reason}"),
            ParseError::TooManyErrors { errors, limit } => {
                write!(
                    f,
                    "recovery gave up: {errors} errors exceed budget of {limit}"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<LogError> for ParseError {
    fn from(e: LogError) -> Self {
        ParseError::Invalid(e)
    }
}

/// How [`read_log_with_policy`] responds to malformed, invariant-breaking,
/// or corrupt input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Fail on the first problem. This is [`read_log`]'s behaviour.
    Strict,
    /// Drop bad lines and corrupt chunks, failing only if more than
    /// `max_errors` problems accumulate.
    Skip {
        /// Error budget before giving up with [`ParseError::TooManyErrors`].
        max_errors: usize,
    },
    /// Like `Skip` without an error budget, and additionally: re-sort
    /// events displaced by at most `window` seconds back into time order,
    /// and drop self-loops, duplicate edges, and edges whose endpoints
    /// never materialise.
    Repair {
        /// Maximum displacement (seconds) the reorder buffer absorbs.
        window: u64,
    },
}

/// Why a line was dropped during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipReason {
    /// The line did not parse.
    Malformed(String),
    /// The event broke an [`EventLog`] invariant.
    Invariant(String),
    /// The line belonged to a chunk whose checksum failed.
    CorruptChunk(String),
    /// The line sat in an unterminated chunk at end of stream.
    TruncatedTail,
    /// The line appeared after the `#%end` footer.
    AfterFooter,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::Malformed(r) => write!(f, "malformed: {r}"),
            SkipReason::Invariant(r) => write!(f, "invariant: {r}"),
            SkipReason::CorruptChunk(r) => write!(f, "corrupt chunk: {r}"),
            SkipReason::TruncatedTail => write!(f, "unterminated chunk at end of stream"),
            SkipReason::AfterFooter => write!(f, "content after footer"),
        }
    }
}

/// A dropped input line and the reason it was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedLine {
    /// 1-based line number.
    pub line: usize,
    /// Why it was dropped.
    pub reason: SkipReason,
}

/// A transformation [`RecoveryPolicy::Repair`] applied to keep the log valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairKind {
    /// The event was moved relative to its file position to restore time
    /// order.
    Reordered,
    /// An edge connecting a node to itself was dropped.
    DroppedSelfLoop,
    /// A second copy of an undirected edge was dropped.
    DroppedDuplicateEdge,
    /// An edge referencing a node id that never materialised was dropped.
    DroppedUnknownEndpoint,
    /// The event was displaced further than the reorder window and had to
    /// be dropped.
    DroppedOutOfWindow,
}

impl fmt::Display for RepairKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RepairKind::Reordered => "reordered into time order",
            RepairKind::DroppedSelfLoop => "dropped self-loop",
            RepairKind::DroppedDuplicateEdge => "dropped duplicate edge",
            RepairKind::DroppedUnknownEndpoint => "dropped edge with unknown endpoint",
            RepairKind::DroppedOutOfWindow => "dropped event displaced beyond repair window",
        };
        f.write_str(s)
    }
}

/// A single repair action, anchored to the input line it affected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairAction {
    /// 1-based line number of the affected event.
    pub line: usize,
    /// What was done.
    pub kind: RepairKind,
}

/// What [`read_log_with_policy`] kept, skipped, and repaired.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// Detected format version (1 or 2).
    pub format_version: u8,
    /// Total lines read from the stream (including comments/directives).
    pub lines_read: u64,
    /// Total bytes read from the stream (including line terminators).
    pub bytes_read: u64,
    /// Events that made it into the returned [`EventLog`].
    pub events_kept: u64,
    /// v2 chunks whose checksum verified.
    pub chunks_verified: u64,
    /// v2 chunks dropped because their checksum or line count mismatched.
    pub chunks_dropped: u64,
    /// Whether the v2 footer was present and its count/CRC matched the
    /// committed payload. Always `false` for v1 input.
    pub footer_verified: bool,
    /// Whether the stream ended before the v2 footer (file truncated).
    pub truncated: bool,
    /// Lines dropped, with reasons.
    pub skipped: Vec<SkippedLine>,
    /// Repairs applied (Repair policy only).
    pub repairs: Vec<RepairAction>,
}

impl IngestReport {
    /// True when the input was ingested without dropping or altering
    /// anything, and (for v2) its footer verified.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
            && self.repairs.is_empty()
            && self.chunks_dropped == 0
            && !self.truncated
            && (self.format_version < 2 || self.footer_verified)
    }

    /// True when the *only* problems are a growing-file tail: the v2
    /// stream ended before its `#%end` footer and every skipped line was
    /// skipped for [`SkipReason::TruncatedTail`] — i.e. the bytes a live
    /// writer has simply not finished appending yet. Mid-file corruption
    /// (dropped chunks, repairs, any other skip reason) disqualifies.
    /// `osn verify --allow-truncated-tail` and the `osn serve --follow`
    /// preflight treat such a report as acceptable.
    pub fn tail_pending(&self) -> bool {
        self.format_version >= 2
            && self.truncated
            && self.chunks_dropped == 0
            && self.repairs.is_empty()
            && self
                .skipped
                .iter()
                .all(|s| matches!(s.reason, SkipReason::TruncatedTail))
    }

    /// Number of problems the ingest surfaced: skipped lines, applied
    /// repairs, dropped chunks, truncation, and (for v2 input) a footer
    /// that failed to verify. `0` iff [`Self::is_clean`].
    pub fn problem_count(&self) -> u64 {
        self.skipped.len() as u64
            + self.repairs.len() as u64
            + self.chunks_dropped
            + u64::from(self.truncated)
            + u64::from(self.format_version >= 2 && !self.footer_verified && !self.truncated)
    }

    /// Single-line machine-readable JSON rendering (hand-rolled; every
    /// field is a number or boolean, so no string escaping is needed).
    /// Consumed by CI and by the `osn serve` startup preflight.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"format_version\":{},\"lines_read\":{},\"bytes_read\":{},\
             \"events_kept\":{},\
             \"chunks_verified\":{},\"chunks_dropped\":{},\"footer_verified\":{},\
             \"truncated\":{},\"tail_pending\":{},\"lines_skipped\":{},\
             \"repairs_applied\":{},\
             \"problems\":{},\"clean\":{}}}",
            self.format_version,
            self.lines_read,
            self.bytes_read,
            self.events_kept,
            self.chunks_verified,
            self.chunks_dropped,
            self.footer_verified,
            self.truncated,
            self.tail_pending(),
            self.skipped.len(),
            self.repairs.len(),
            self.problem_count(),
            self.is_clean(),
        )
    }

    /// Multi-line human-readable summary (used by `osn verify`).
    pub fn summary(&self) -> String {
        use fmt::Write as _;
        const DETAIL_CAP: usize = 10;
        let mut s = String::new();
        let _ = writeln!(s, "format: v{}", self.format_version);
        let _ = writeln!(s, "lines read: {}", self.lines_read);
        let _ = writeln!(s, "bytes read: {}", self.bytes_read);
        let _ = writeln!(s, "events kept: {}", self.events_kept);
        if self.format_version >= 2 {
            let _ = writeln!(
                s,
                "chunks: {} verified, {} dropped",
                self.chunks_verified, self.chunks_dropped
            );
            let footer = if self.truncated {
                "missing (stream truncated)"
            } else if self.footer_verified {
                "verified"
            } else {
                "MISMATCH"
            };
            let _ = writeln!(s, "footer: {footer}");
        }
        let _ = writeln!(s, "lines skipped: {}", self.skipped.len());
        for sk in self.skipped.iter().take(DETAIL_CAP) {
            let _ = writeln!(s, "  line {}: {}", sk.line, sk.reason);
        }
        if self.skipped.len() > DETAIL_CAP {
            let _ = writeln!(s, "  ... and {} more", self.skipped.len() - DETAIL_CAP);
        }
        let _ = writeln!(s, "repairs applied: {}", self.repairs.len());
        for r in self.repairs.iter().take(DETAIL_CAP) {
            let _ = writeln!(s, "  line {}: {}", r.line, r.kind);
        }
        if self.repairs.len() > DETAIL_CAP {
            let _ = writeln!(s, "  ... and {} more", self.repairs.len() - DETAIL_CAP);
        }
        s
    }
}

fn origin_token(o: Origin) -> &'static str {
    o.label()
}

fn parse_origin(tok: &str, line: usize) -> Result<Origin, ParseError> {
    match tok {
        "core" => Ok(Origin::Core),
        "competitor" => Ok(Origin::Competitor),
        "postmerge" => Ok(Origin::PostMerge),
        other => Err(ParseError::Malformed {
            line,
            reason: format!("unknown origin '{other}'"),
        }),
    }
}

/// Write a log in the v1 plain-text format (no checksums).
pub fn write_log<W: Write>(log: &EventLog, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# multiscale-osn event log: {} nodes, {} edges, {} days",
        log.num_nodes(),
        log.num_edges(),
        log.end_day() + 1
    )?;
    for e in log.events() {
        writeln!(w, "{}", format_event(e))?;
    }
    w.flush()
}

/// Write a log in the checksummed v2 format with the default chunk size.
pub fn write_log_v2<W: Write>(log: &EventLog, writer: W) -> io::Result<()> {
    write_log_v2_chunked(log, writer, DEFAULT_CHUNK_LINES)
}

/// Write a log in the checksummed v2 format, `chunk_lines` events per chunk.
pub fn write_log_v2_chunked<W: Write>(
    log: &EventLog,
    writer: W,
    chunk_lines: usize,
) -> io::Result<()> {
    let chunk_lines = chunk_lines.max(1);
    let mut w = BufWriter::new(writer);
    writeln!(w, "{FORMAT_V2_MAGIC}")?;
    writeln!(
        w,
        "# multiscale-osn event log: {} nodes, {} edges, {} days",
        log.num_nodes(),
        log.num_edges(),
        log.end_day() + 1
    )?;
    let mut total = Crc32::new();
    let mut chunk = Crc32::new();
    let mut in_chunk = 0usize;
    for e in log.events() {
        let line = format_event(e);
        writeln!(w, "{line}")?;
        chunk.update(line.as_bytes());
        chunk.update(b"\n");
        total.update(line.as_bytes());
        total.update(b"\n");
        in_chunk += 1;
        if in_chunk == chunk_lines {
            writeln!(w, "#%chunk lines={} crc={:08x}", in_chunk, chunk.finalize())?;
            chunk = Crc32::new();
            in_chunk = 0;
        }
    }
    if in_chunk > 0 {
        writeln!(w, "#%chunk lines={} crc={:08x}", in_chunk, chunk.finalize())?;
    }
    writeln!(
        w,
        "#%end events={} crc={:08x}",
        log.events().len(),
        total.finalize()
    )?;
    w.flush()
}

fn format_event(e: &crate::event::Event) -> String {
    match e.kind {
        crate::event::EventKind::AddNode { origin, .. } => {
            format!("N {} {}", e.time.seconds(), origin_token(origin))
        }
        crate::event::EventKind::AddEdge { u, v } => {
            format!("E {} {} {}", e.time.seconds(), u.0, v.0)
        }
    }
}

/// Atomically save a log at `path` in the v1 format (tmp + fsync + rename;
/// missing parent directories are created).
pub fn save_log<P: AsRef<std::path::Path>>(log: &EventLog, path: P) -> io::Result<()> {
    crate::atomicfile::write_atomic(path.as_ref(), |w| write_log(log, w))
}

/// Atomically save a log at `path` in the checksummed v2 format.
pub fn save_log_v2<P: AsRef<std::path::Path>>(log: &EventLog, path: P) -> io::Result<()> {
    crate::atomicfile::write_atomic(path.as_ref(), |w| write_log_v2(log, w))
}

/// Incremental writer for the checksummed v2 format: the append-only
/// producer side of live ingest.
///
/// [`write_log_v2_chunked`] serialises a finished log in one pass; this
/// type produces the identical framing one chunk at a time, so a trace
/// can be grown on disk while `osn serve --follow` tails it. Each
/// appended chunk (payload lines + its `#%chunk` directive) is written
/// with a single `write_all` and flushed, so a tailing reader observes
/// either none of the chunk or all of it — unless the underlying writer
/// itself tears the write, which the torn-tail chaos tests do on purpose
/// via `testutil::SlowAppendWriter`.
#[derive(Debug)]
pub struct LogAppender<W: Write> {
    w: W,
    total: Crc32,
    events: u64,
}

impl<W: Write> LogAppender<W> {
    /// Start a new v2 stream: writes the format magic and flushes.
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(format!("{FORMAT_V2_MAGIC}\n").as_bytes())?;
        w.flush()?;
        Ok(LogAppender {
            w,
            total: Crc32::new(),
            events: 0,
        })
    }

    /// Append one comment line (not checksummed; v1 readers skip it too).
    pub fn append_comment(&mut self, text: &str) -> io::Result<()> {
        self.w.write_all(format!("# {text}\n").as_bytes())?;
        self.w.flush()
    }

    /// Append `events` as one checksummed chunk. Empty input is a no-op.
    /// The caller is responsible for overall time-ordering across calls
    /// (readers validate it, exactly as they do for batch-written files).
    pub fn append_chunk(&mut self, events: &[crate::event::Event]) -> io::Result<()> {
        if events.is_empty() {
            return Ok(());
        }
        let mut chunk = Crc32::new();
        let mut buf = String::new();
        for e in events {
            let line = format_event(e);
            chunk.update(line.as_bytes());
            chunk.update(b"\n");
            self.total.update(line.as_bytes());
            self.total.update(b"\n");
            buf.push_str(&line);
            buf.push('\n');
        }
        buf.push_str(&format!(
            "#%chunk lines={} crc={:08x}\n",
            events.len(),
            chunk.finalize()
        ));
        self.events += events.len() as u64;
        self.w.write_all(buf.as_bytes())?;
        self.w.flush()
    }

    /// Events appended so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Terminate the stream with the `#%end` footer and return the inner
    /// writer. A stream left unfinished reads back as truncated (tail
    /// pending), which is exactly what a live reader expects mid-write.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.write_all(
            format!(
                "#%end events={} crc={:08x}\n",
                self.events,
                self.total.finalize()
            )
            .as_bytes(),
        )?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Read a log in either format, strictly (first problem aborts).
pub fn read_log<R: Read>(reader: R) -> Result<EventLog, ParseError> {
    read_log_with_policy(reader, &RecoveryPolicy::Strict).map(|(log, _)| log)
}

/// Read a log in either format under a [`RecoveryPolicy`], returning the
/// events that survived plus an [`IngestReport`] describing what happened.
pub fn read_log_with_policy<R: Read>(
    reader: R,
    policy: &RecoveryPolicy,
) -> Result<(EventLog, IngestReport), ParseError> {
    let _span = osn_obs::span!("ingest.read");
    let result = read_log_with_policy_inner(reader, policy);
    if let Ok((_, report)) = &result {
        osn_obs::counter!("ingest.lines").add(report.lines_read);
        osn_obs::counter!("ingest.bytes").add(report.bytes_read);
        osn_obs::counter!("ingest.events").add(report.events_kept);
        osn_obs::counter!("ingest.chunks_verified").add(report.chunks_verified);
        osn_obs::counter!("ingest.chunks_dropped").add(report.chunks_dropped);
        osn_obs::counter!("ingest.lines_skipped").add(report.skipped.len() as u64);
        osn_obs::counter!("ingest.repairs").add(report.repairs.len() as u64);
    }
    result
}

fn read_log_with_policy_inner<R: Read>(
    reader: R,
    policy: &RecoveryPolicy,
) -> Result<(EventLog, IngestReport), ParseError> {
    let mut lines = LineReader::new(reader);
    let mut ing = Ingestor::new(policy);
    match lines.next_line()? {
        None => {
            ing.report.format_version = 1;
            ing.finish()
        }
        Some(first) => {
            if trim(&first) == FORMAT_V2_MAGIC.as_bytes() {
                ing.report.format_version = 2;
                ing.report.lines_read = 1;
                ing.report.bytes_read = first.len() as u64;
                read_v2(lines, ing)
            } else {
                ing.report.format_version = 1;
                read_v1(lines, ing, first)
            }
        }
    }
}

/// Trim ASCII whitespace (including the line terminator) from both ends.
pub(crate) fn trim(bytes: &[u8]) -> &[u8] {
    let start = bytes.iter().position(|b| !b.is_ascii_whitespace());
    match start {
        None => &[],
        Some(s) => {
            let end = bytes
                .iter()
                .rposition(|b| !b.is_ascii_whitespace())
                .unwrap();
            &bytes[s..=end]
        }
    }
}

fn read_v1<R: Read>(
    mut lines: LineReader<R>,
    mut ing: Ingestor<'_>,
    first: Vec<u8>,
) -> Result<(EventLog, IngestReport), ParseError> {
    let mut lineno = 1;
    ing.report.lines_read = 1;
    let mut current = Some(first);
    while let Some(raw) = current {
        ing.report.bytes_read += raw.len() as u64;
        let t = trim(&raw);
        if !(t.is_empty() || t.first() == Some(&b'#')) {
            ing.payload_line(lineno, t)?;
        }
        current = lines.next_line()?;
        if current.is_some() {
            lineno += 1;
            ing.report.lines_read += 1;
        }
    }
    ing.finish()
}

/// v2 framing state: buffer payload lines until their chunk's checksum
/// verifies, then commit them to the ingest policy.
fn read_v2<R: Read>(
    mut lines: LineReader<R>,
    mut ing: Ingestor<'_>,
) -> Result<(EventLog, IngestReport), ParseError> {
    let mut lineno = 1usize; // the magic line
    let mut pending: Vec<(usize, Vec<u8>)> = Vec::new();
    let mut chunk_crc = Crc32::new();
    let mut total_crc = Crc32::new();
    let mut payload_committed: u64 = 0;
    let mut footer_seen = false;
    while let Some(raw) = lines.next_line()? {
        lineno += 1;
        ing.report.lines_read += 1;
        ing.report.bytes_read += raw.len() as u64;
        let t = trim(&raw);
        if t.is_empty() {
            continue;
        }
        if t.starts_with(b"#%") {
            let directive = match std::str::from_utf8(t) {
                Ok(s) => s,
                Err(_) => {
                    ing.corrupt(lineno, "directive is not valid utf-8".to_string())?;
                    continue;
                }
            };
            if let Some(rest) = directive.strip_prefix("#%chunk ") {
                match parse_chunk_directive(rest) {
                    Some((n, crc)) => {
                        // Only pay for the timestamp when telemetry is on.
                        let verify_started = osn_obs::enabled().then(std::time::Instant::now);
                        let got = chunk_crc.finalize();
                        if n != pending.len() {
                            let reason = format!(
                                "chunk declares {} lines but {} were read",
                                n,
                                pending.len()
                            );
                            ing.drop_chunk(lineno, &mut pending, reason)?;
                        } else if crc != got {
                            let reason = format!(
                                "chunk checksum mismatch: expected {crc:08x}, got {got:08x}"
                            );
                            ing.drop_chunk(lineno, &mut pending, reason)?;
                        } else {
                            ing.report.chunks_verified += 1;
                            for (ln, bytes) in pending.drain(..) {
                                total_crc.update(trim(&bytes));
                                total_crc.update(b"\n");
                                payload_committed += 1;
                                ing.payload_line(ln, trim(&bytes))?;
                            }
                        }
                        if let Some(t0) = verify_started {
                            osn_obs::histogram!("ingest.chunk_verify_us")
                                .record_duration(t0.elapsed());
                        }
                        chunk_crc = Crc32::new();
                    }
                    None => ing.corrupt(lineno, format!("bad chunk directive '{directive}'"))?,
                }
            } else if let Some(rest) = directive.strip_prefix("#%end ") {
                match parse_end_directive(rest) {
                    Some((n, crc)) => {
                        if !pending.is_empty() {
                            let reason = "unterminated chunk before footer".to_string();
                            ing.drop_chunk(lineno, &mut pending, reason)?;
                            chunk_crc = Crc32::new();
                        }
                        let got = total_crc.finalize();
                        let ok = n as u64 == payload_committed && crc == got;
                        if !ok && matches!(ing.policy, RecoveryPolicy::Strict) {
                            return Err(ParseError::Corrupt {
                                line: lineno,
                                reason: format!(
                                    "footer mismatch: declared {n} events crc {crc:08x}, \
                                     committed {payload_committed} events crc {got:08x}"
                                ),
                            });
                        }
                        ing.report.footer_verified = ok;
                        footer_seen = true;
                    }
                    None => ing.corrupt(lineno, format!("bad end directive '{directive}'"))?,
                }
            } else if directive == FORMAT_V2_MAGIC {
                ing.corrupt(lineno, "repeated format magic".to_string())?;
            } else {
                ing.corrupt(lineno, format!("unknown directive '{directive}'"))?;
            }
            continue;
        }
        if t.first() == Some(&b'#') {
            continue; // ordinary comment: not checksummed
        }
        if footer_seen {
            ing.after_footer(lineno)?;
            continue;
        }
        chunk_crc.update(t);
        chunk_crc.update(b"\n");
        pending.push((lineno, raw));
    }
    if !footer_seen {
        ing.report.truncated = true;
        if matches!(ing.policy, RecoveryPolicy::Strict) {
            return Err(ParseError::Corrupt {
                line: lineno,
                reason: "stream truncated: missing #%end footer".to_string(),
            });
        }
        for (ln, _) in pending.drain(..) {
            ing.skip(ln, SkipReason::TruncatedTail)?;
        }
    }
    ing.finish()
}

/// Parse `lines=<n> crc=<hex>`; returns `(lines, crc)`.
pub(crate) fn parse_chunk_directive(rest: &str) -> Option<(usize, u32)> {
    let mut it = rest.split_ascii_whitespace();
    let n = it.next()?.strip_prefix("lines=")?.parse().ok()?;
    let crc = u32::from_str_radix(it.next()?.strip_prefix("crc=")?, 16).ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((n, crc))
}

/// Parse `events=<n> crc=<hex>`; returns `(events, crc)`.
pub(crate) fn parse_end_directive(rest: &str) -> Option<(usize, u32)> {
    let mut it = rest.split_ascii_whitespace();
    let n = it.next()?.strip_prefix("events=")?.parse().ok()?;
    let crc = u32::from_str_radix(it.next()?.strip_prefix("crc=")?, 16).ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((n, crc))
}

/// Buffered line reader that retries [`io::ErrorKind::Interrupted`] so a
/// signal-interrupted `read(2)` never aborts an ingest mid-trace.
struct LineReader<R> {
    r: BufReader<R>,
}

impl<R: Read> LineReader<R> {
    fn new(reader: R) -> Self {
        LineReader {
            r: BufReader::new(reader),
        }
    }

    /// Next raw line (without splitting on anything but `\n`), or `None`
    /// at end of stream.
    fn next_line(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut buf = Vec::new();
        loop {
            match self.r.read_until(b'\n', &mut buf) {
                Ok(_) => break,
                // Bytes already pulled stay in `buf`; keep reading.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if buf.is_empty() {
            Ok(None)
        } else {
            Ok(Some(buf))
        }
    }
}

/// A parsed event line, before policy application.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawEvent {
    pub(crate) time: u64,
    pub(crate) kind: RawKind,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum RawKind {
    Node(Origin),
    Edge(u32, u32),
}

/// Parse one payload line. Mirrors the historical v1 parser exactly,
/// including its error wording.
pub(crate) fn parse_event_line(line: &str, lineno: usize) -> Result<RawEvent, ParseError> {
    let mut parts = line.split_ascii_whitespace();
    let tag = parts.next().unwrap_or_default();
    let malformed = |reason: &str| ParseError::Malformed {
        line: lineno,
        reason: reason.to_string(),
    };
    let secs: u64 = parts
        .next()
        .ok_or_else(|| malformed("missing timestamp"))?
        .parse()
        .map_err(|_| malformed("bad timestamp"))?;
    let kind = match tag {
        "N" => {
            let origin = parse_origin(
                parts.next().ok_or_else(|| malformed("missing origin"))?,
                lineno,
            )?;
            RawKind::Node(origin)
        }
        "E" => {
            let u: u32 = parts
                .next()
                .ok_or_else(|| malformed("missing endpoint u"))?
                .parse()
                .map_err(|_| malformed("bad endpoint u"))?;
            let v: u32 = parts
                .next()
                .ok_or_else(|| malformed("missing endpoint v"))?
                .parse()
                .map_err(|_| malformed("bad endpoint v"))?;
            RawKind::Edge(u, v)
        }
        other => {
            return Err(malformed(&format!("unknown record tag '{other}'")));
        }
    };
    if parts.next().is_some() {
        return Err(malformed("trailing tokens"));
    }
    Ok(RawEvent { time: secs, kind })
}

/// An event buffered in the Repair reorder heap. Ordered by `(time, seq)`
/// so ties keep their original file order (stable sort).
#[derive(Debug, Clone, Copy)]
struct Pending {
    time: u64,
    seq: u64,
    lineno: usize,
    kind: PendingKind,
}

#[derive(Debug, Clone, Copy)]
enum PendingKind {
    Node { origin: Origin, raw_id: u32 },
    Edge { u: u32, v: u32 },
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Applies a [`RecoveryPolicy`] to the parsed event stream.
///
/// Under `Repair`, node ids need care: the on-disk format gives nodes
/// implicit dense ids in *file* order, so re-sorting `N` lines changes the
/// ids later `E` lines refer to. The ingestor therefore assigns each `N`
/// line a *raw* id at read time and remaps raw ids to the post-sort dense
/// ids as nodes are committed; edges whose endpoints have not materialised
/// by the time the edge is committed are dropped and reported.
struct Ingestor<'p> {
    policy: &'p RecoveryPolicy,
    builder: EventLogBuilder,
    report: IngestReport,
    errors: usize,
    // Repair state.
    heap: BinaryHeap<std::cmp::Reverse<Pending>>,
    remap: Vec<Option<NodeId>>,
    max_time: u64,
    seq: u64,
    max_seq_applied: Option<u64>,
    last_applied_time: u64,
}

impl<'p> Ingestor<'p> {
    fn new(policy: &'p RecoveryPolicy) -> Self {
        Ingestor {
            policy,
            builder: EventLogBuilder::new(),
            report: IngestReport::default(),
            errors: 0,
            heap: BinaryHeap::new(),
            remap: Vec::new(),
            max_time: 0,
            seq: 0,
            max_seq_applied: None,
            last_applied_time: 0,
        }
    }

    /// Record a dropped line, enforcing `Skip`'s error budget.
    fn skip(&mut self, line: usize, reason: SkipReason) -> Result<(), ParseError> {
        self.report.skipped.push(SkippedLine { line, reason });
        self.errors += 1;
        if let RecoveryPolicy::Skip { max_errors } = *self.policy {
            if self.errors > max_errors {
                return Err(ParseError::TooManyErrors {
                    errors: self.errors,
                    limit: max_errors,
                });
            }
        }
        Ok(())
    }

    /// Handle a v2 framing problem: fatal under Strict, recorded otherwise.
    fn corrupt(&mut self, line: usize, reason: String) -> Result<(), ParseError> {
        if matches!(self.policy, RecoveryPolicy::Strict) {
            return Err(ParseError::Corrupt { line, reason });
        }
        self.skip(line, SkipReason::CorruptChunk(reason))
    }

    /// Drop a whole buffered chunk (checksum or line-count mismatch).
    fn drop_chunk(
        &mut self,
        marker_line: usize,
        pending: &mut Vec<(usize, Vec<u8>)>,
        reason: String,
    ) -> Result<(), ParseError> {
        if matches!(self.policy, RecoveryPolicy::Strict) {
            return Err(ParseError::Corrupt {
                line: marker_line,
                reason,
            });
        }
        self.report.chunks_dropped += 1;
        pending.clear();
        self.skip(marker_line, SkipReason::CorruptChunk(reason))
    }

    fn after_footer(&mut self, line: usize) -> Result<(), ParseError> {
        if matches!(self.policy, RecoveryPolicy::Strict) {
            return Err(ParseError::Corrupt {
                line,
                reason: "event line after #%end footer".to_string(),
            });
        }
        self.skip(line, SkipReason::AfterFooter)
    }

    /// Ingest one committed payload line under the active policy.
    fn payload_line(&mut self, lineno: usize, bytes: &[u8]) -> Result<(), ParseError> {
        let text = match std::str::from_utf8(bytes) {
            Ok(t) => t,
            Err(_) => {
                let err = ParseError::Malformed {
                    line: lineno,
                    reason: "line is not valid utf-8".to_string(),
                };
                return self.parse_failure(lineno, err);
            }
        };
        let raw = match parse_event_line(text, lineno) {
            Ok(raw) => raw,
            Err(err) => return self.parse_failure(lineno, err),
        };
        match self.policy {
            RecoveryPolicy::Strict => self.apply_direct(lineno, raw),
            RecoveryPolicy::Skip { .. } => match self.apply_direct(lineno, raw) {
                Ok(()) => Ok(()),
                Err(ParseError::Invalid(e)) => {
                    self.skip(lineno, SkipReason::Invariant(e.to_string()))
                }
                Err(e) => Err(e),
            },
            RecoveryPolicy::Repair { window } => {
                let window = *window;
                self.buffer_for_repair(lineno, raw);
                self.drain_ready(window)
            }
        }
    }

    fn parse_failure(&mut self, lineno: usize, err: ParseError) -> Result<(), ParseError> {
        match self.policy {
            RecoveryPolicy::Strict => Err(err),
            _ => self.skip(lineno, SkipReason::Malformed(err.to_string())),
        }
    }

    /// Strict/Skip path: feed the builder immediately.
    fn apply_direct(&mut self, _lineno: usize, raw: RawEvent) -> Result<(), ParseError> {
        match raw.kind {
            RawKind::Node(origin) => {
                self.builder.add_node(Time(raw.time), origin)?;
            }
            RawKind::Edge(u, v) => {
                self.builder
                    .add_edge(Time(raw.time), NodeId(u), NodeId(v))?;
            }
        }
        Ok(())
    }

    /// Repair path: stamp the event with a sequence number (and nodes with
    /// their raw file-order id) and push it into the reorder heap.
    fn buffer_for_repair(&mut self, lineno: usize, raw: RawEvent) {
        let kind = match raw.kind {
            RawKind::Node(origin) => {
                let raw_id = self.remap.len() as u32;
                self.remap.push(None);
                PendingKind::Node { origin, raw_id }
            }
            RawKind::Edge(u, v) => PendingKind::Edge { u, v },
        };
        let p = Pending {
            time: raw.time,
            seq: self.seq,
            lineno,
            kind,
        };
        self.seq += 1;
        self.max_time = self.max_time.max(raw.time);
        self.heap.push(std::cmp::Reverse(p));
    }

    /// Release buffered events that can no longer be displaced by future
    /// input (their time is more than `window` behind the newest seen).
    fn drain_ready(&mut self, window: u64) -> Result<(), ParseError> {
        while let Some(std::cmp::Reverse(top)) = self.heap.peek().copied() {
            if top.time.saturating_add(window) >= self.max_time {
                break;
            }
            self.heap.pop();
            self.apply_repaired(top)?;
        }
        Ok(())
    }

    /// Commit one event popped from the reorder heap, remapping node ids
    /// and dropping whatever would break an [`EventLog`] invariant.
    fn apply_repaired(&mut self, p: Pending) -> Result<(), ParseError> {
        if let Some(max_seq) = self.max_seq_applied {
            if p.seq < max_seq {
                self.report.repairs.push(RepairAction {
                    line: p.lineno,
                    kind: RepairKind::Reordered,
                });
            }
        }
        self.max_seq_applied = Some(self.max_seq_applied.map_or(p.seq, |m| m.max(p.seq)));
        if p.time < self.last_applied_time {
            // Displaced further than the reorder window could absorb.
            self.report.repairs.push(RepairAction {
                line: p.lineno,
                kind: RepairKind::DroppedOutOfWindow,
            });
            return Ok(());
        }
        match p.kind {
            PendingKind::Node { origin, raw_id } => {
                let id = self.builder.add_node(Time(p.time), origin)?;
                self.remap[raw_id as usize] = Some(id);
            }
            PendingKind::Edge { u, v } => {
                let u_new = self.remap.get(u as usize).copied().flatten();
                let v_new = self.remap.get(v as usize).copied().flatten();
                let (u_new, v_new) = match (u_new, v_new) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        self.report.repairs.push(RepairAction {
                            line: p.lineno,
                            kind: RepairKind::DroppedUnknownEndpoint,
                        });
                        return Ok(());
                    }
                };
                if u_new == v_new {
                    self.report.repairs.push(RepairAction {
                        line: p.lineno,
                        kind: RepairKind::DroppedSelfLoop,
                    });
                    return Ok(());
                }
                if self.builder.has_edge(u_new, v_new) {
                    self.report.repairs.push(RepairAction {
                        line: p.lineno,
                        kind: RepairKind::DroppedDuplicateEdge,
                    });
                    return Ok(());
                }
                self.builder.add_edge(Time(p.time), u_new, v_new)?;
            }
        }
        self.last_applied_time = p.time;
        Ok(())
    }

    fn finish(mut self) -> Result<(EventLog, IngestReport), ParseError> {
        // Drain whatever the reorder window still holds, in (time, seq)
        // order.
        while let Some(std::cmp::Reverse(p)) = self.heap.pop() {
            self.apply_repaired(p)?;
        }
        self.report.events_kept = self.builder.num_nodes() as u64 + self.builder.num_edges();
        let log = self.builder.build();
        let mut report = self.report;
        if report.format_version == 0 {
            report.format_version = 1;
        }
        Ok((log, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn ingest_report_json_is_single_line_and_tracks_problems() {
        let clean = IngestReport {
            format_version: 2,
            lines_read: 10,
            events_kept: 8,
            chunks_verified: 2,
            footer_verified: true,
            ..IngestReport::default()
        };
        assert!(clean.is_clean());
        assert_eq!(clean.problem_count(), 0);
        let json = clean.to_json();
        assert!(!json.contains('\n'), "must be a single line: {json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"format_version\":2"));
        assert!(json.contains("\"events_kept\":8"));
        assert!(json.contains("\"clean\":true"));
        assert!(json.contains("\"problems\":0"));

        let dirty = IngestReport {
            format_version: 2,
            lines_read: 10,
            events_kept: 5,
            chunks_dropped: 1,
            truncated: true,
            skipped: vec![SkippedLine {
                line: 3,
                reason: SkipReason::TruncatedTail,
            }],
            ..IngestReport::default()
        };
        assert_eq!(dirty.problem_count(), 3);
        let json = dirty.to_json();
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"problems\":3"));
        assert!(json.contains("\"truncated\":true"));

        // A v2 stream whose footer failed (not truncated) is one problem.
        let bad_footer = IngestReport {
            format_version: 2,
            ..IngestReport::default()
        };
        assert_eq!(bad_footer.problem_count(), 1);
    }

    fn sample() -> EventLog {
        let mut b = EventLogBuilder::new();
        let a = b.add_node(Time(0), Origin::Core).unwrap();
        let c = b.add_node(Time(5), Origin::Competitor).unwrap();
        let d = b.add_node(Time(9), Origin::PostMerge).unwrap();
        b.add_edge(Time(10), a, c).unwrap();
        b.add_edge(Time(12), d, a).unwrap();
        b.build()
    }

    fn assert_logs_equal(a: &EventLog, b: &EventLog) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.events().len(), b.events().len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.time, y.time);
            match (x.kind, y.kind) {
                (EventKind::AddNode { origin: oa, .. }, EventKind::AddNode { origin: ob, .. }) => {
                    assert_eq!(oa, ob)
                }
                (EventKind::AddEdge { u: ua, v: va }, EventKind::AddEdge { u: ub, v: vb }) => {
                    assert_eq!((ua, va), (ub, vb))
                }
                _ => panic!("kind mismatch"),
            }
        }
    }

    #[test]
    fn roundtrip() {
        let log = sample();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let parsed = read_log(&buf[..]).unwrap();
        assert_logs_equal(&parsed, &log);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\nN 0 core\nN 1 core\nE 2 0 1\n";
        let log = read_log(text.as_bytes()).unwrap();
        assert_eq!(log.num_nodes(), 2);
        assert_eq!(log.num_edges(), 1);
    }

    #[test]
    fn bad_tag_rejected() {
        let err = read_log("X 0 core\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 1, .. }));
    }

    #[test]
    fn bad_origin_rejected() {
        let err = read_log("N 0 martian\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown origin"));
    }

    #[test]
    fn invalid_log_rejected() {
        // edge before nodes exist
        let err = read_log("E 0 0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = read_log("N 0 core extra\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    // ---- v2 format ----

    #[test]
    fn v2_roundtrip() {
        let log = sample();
        let mut buf = Vec::new();
        write_log_v2(&log, &mut buf).unwrap();
        let (parsed, report) = read_log_with_policy(&buf[..], &RecoveryPolicy::Strict).unwrap();
        assert_logs_equal(&parsed, &log);
        assert_eq!(report.format_version, 2);
        assert!(report.footer_verified);
        assert!(report.is_clean());
        assert_eq!(report.events_kept, 5);
    }

    #[test]
    fn v2_roundtrip_small_chunks() {
        let log = sample();
        let mut buf = Vec::new();
        write_log_v2_chunked(&log, &mut buf, 2).unwrap();
        let (parsed, report) = read_log_with_policy(&buf[..], &RecoveryPolicy::Strict).unwrap();
        assert_logs_equal(&parsed, &log);
        assert_eq!(report.chunks_verified, 3);
    }

    #[test]
    fn v2_readable_by_v1_semantics() {
        // Directives all start with '#', so treating them as comments must
        // yield the same events. (This is the backward-compat guarantee.)
        let log = sample();
        let mut buf = Vec::new();
        write_log_v2(&log, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = read_log(stripped.as_bytes()).unwrap();
        assert_logs_equal(&parsed, &log);
    }

    #[test]
    fn v2_truncation_detected() {
        let log = sample();
        let mut buf = Vec::new();
        write_log_v2(&log, &mut buf).unwrap();
        // Cut the footer off.
        let text = String::from_utf8(buf).unwrap();
        let cut = text.rfind("#%end").unwrap();
        let err = read_log(&text.as_bytes()[..cut]).unwrap_err();
        assert!(matches!(err, ParseError::Corrupt { .. }), "got {err}");
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn v2_bit_flip_detected_strict() {
        let log = sample();
        let mut buf = Vec::new();
        write_log_v2(&log, &mut buf).unwrap();
        // Corrupt a digit inside an event line ("E 10 0 1" -> "E 10 0 2"):
        // still parseable, so only the checksum can catch it.
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("E 10 0 1", "E 10 0 2");
        let err = read_log(text.as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Corrupt { .. }), "got {err}");
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn v2_corrupt_chunk_dropped_under_skip() {
        let log = sample();
        let mut buf = Vec::new();
        write_log_v2_chunked(&log, &mut buf, 1).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("E 10 0 1", "E 10 0 2");
        let (parsed, report) =
            read_log_with_policy(text.as_bytes(), &RecoveryPolicy::Skip { max_errors: 8 }).unwrap();
        // The corrupted chunk held one edge; everything else survives.
        assert_eq!(parsed.num_nodes(), 3);
        assert_eq!(parsed.num_edges(), 1);
        assert_eq!(report.chunks_dropped, 1);
        assert_eq!(report.chunks_verified, 4);
        assert!(
            !report.footer_verified,
            "dropped payload cannot match footer crc"
        );
        assert!(!report.is_clean());
    }

    #[test]
    fn skip_budget_enforced() {
        let text = "N 0 core\nX 1 junk\nX 2 junk\nX 3 junk\n";
        let err = read_log_with_policy(text.as_bytes(), &RecoveryPolicy::Skip { max_errors: 2 })
            .unwrap_err();
        assert!(matches!(
            err,
            ParseError::TooManyErrors {
                errors: 3,
                limit: 2
            }
        ));
        let (log, report) =
            read_log_with_policy(text.as_bytes(), &RecoveryPolicy::Skip { max_errors: 3 }).unwrap();
        assert_eq!(log.num_nodes(), 1);
        assert_eq!(report.skipped.len(), 3);
    }

    #[test]
    fn skip_drops_invariant_violations() {
        // Self-loop and duplicate edge are invariant errors, not parse
        // errors.
        let text = "N 0 core\nN 0 core\nE 1 0 0\nE 2 0 1\nE 3 0 1\n";
        let (log, report) =
            read_log_with_policy(text.as_bytes(), &RecoveryPolicy::Skip { max_errors: 4 }).unwrap();
        assert_eq!(log.num_nodes(), 2);
        assert_eq!(log.num_edges(), 1);
        assert_eq!(report.skipped.len(), 2);
        assert!(report
            .skipped
            .iter()
            .all(|s| matches!(s.reason, SkipReason::Invariant(_))));
    }

    #[test]
    fn repair_reorders_within_window() {
        // The two nodes arrive out of time order; a 10-second window
        // restores them. Note ids remap: the t=0 node becomes id 0.
        let text = "N 5 competitor\nN 0 core\nE 6 0 1\n";
        let (log, report) =
            read_log_with_policy(text.as_bytes(), &RecoveryPolicy::Repair { window: 10 }).unwrap();
        assert_eq!(log.num_nodes(), 2);
        assert_eq!(log.num_edges(), 1);
        assert_eq!(log.origin(NodeId(0)), Origin::Core);
        assert_eq!(log.origin(NodeId(1)), Origin::Competitor);
        assert_eq!(log.join_time(NodeId(0)), Time(0));
        assert!(report
            .repairs
            .iter()
            .any(|r| r.kind == RepairKind::Reordered));
        // The edge "E 6 0 1" referred to raw ids (file order): raw 0 is the
        // competitor node, raw 1 the core node. After remap it connects the
        // same two actual nodes.
        let edges: Vec<_> = log.edge_events().collect();
        assert_eq!(edges, vec![(Time(6), NodeId(0), NodeId(1))]);
    }

    #[test]
    fn repair_drops_self_loops_and_duplicates() {
        let text = "N 0 core\nN 1 core\nE 2 0 0\nE 3 0 1\nE 4 1 0\n";
        let (log, report) =
            read_log_with_policy(text.as_bytes(), &RecoveryPolicy::Repair { window: 0 }).unwrap();
        assert_eq!(log.num_edges(), 1);
        let kinds: Vec<_> = report.repairs.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&RepairKind::DroppedSelfLoop));
        assert!(kinds.contains(&RepairKind::DroppedDuplicateEdge));
    }

    #[test]
    fn repair_drops_unknown_endpoints() {
        let text = "N 0 core\nE 1 0 7\n";
        let (log, report) =
            read_log_with_policy(text.as_bytes(), &RecoveryPolicy::Repair { window: 0 }).unwrap();
        assert_eq!(log.num_edges(), 0);
        assert!(report
            .repairs
            .iter()
            .any(|r| r.kind == RepairKind::DroppedUnknownEndpoint));
    }

    #[test]
    fn repair_drops_beyond_window() {
        // The t=0 node is displaced 100s but the window only absorbs 5s.
        let text = "N 50 core\nN 100 core\nN 200 core\nN 0 core\nN 300 core\n";
        let (log, report) =
            read_log_with_policy(text.as_bytes(), &RecoveryPolicy::Repair { window: 5 }).unwrap();
        assert_eq!(log.num_nodes(), 4);
        assert!(report
            .repairs
            .iter()
            .any(|r| r.kind == RepairKind::DroppedOutOfWindow));
    }

    #[test]
    fn repair_on_clean_input_is_identity() {
        let log = sample();
        let mut buf = Vec::new();
        write_log_v2(&log, &mut buf).unwrap();
        let (parsed, report) =
            read_log_with_policy(&buf[..], &RecoveryPolicy::Repair { window: 60 }).unwrap();
        assert_logs_equal(&parsed, &log);
        assert!(
            report.is_clean(),
            "clean input should need no repairs: {report:?}"
        );
    }

    #[test]
    fn report_summary_mentions_key_facts() {
        let text = "N 0 core\nX 1 junk\n";
        let (_, report) =
            read_log_with_policy(text.as_bytes(), &RecoveryPolicy::Skip { max_errors: 5 }).unwrap();
        let s = report.summary();
        assert!(s.contains("format: v1"));
        assert!(s.contains("events kept: 1"));
        assert!(s.contains("lines skipped: 1"));
        assert!(s.contains("unknown record tag"));
    }

    #[test]
    fn empty_input_is_empty_log() {
        let (log, report) = read_log_with_policy(&b""[..], &RecoveryPolicy::Strict).unwrap();
        assert_eq!(log.num_nodes(), 0);
        assert_eq!(report.lines_read, 0);
    }

    #[test]
    fn interrupted_reads_are_retried() {
        struct Stutter<'a> {
            data: &'a [u8],
            pos: usize,
            tick: u32,
        }
        impl Read for Stutter<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.tick += 1;
                if self.tick % 2 == 1 {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
                }
                let n = 3.min(self.data.len() - self.pos).min(buf.len());
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let log = sample();
        let mut buf = Vec::new();
        write_log_v2(&log, &mut buf).unwrap();
        let r = Stutter {
            data: &buf,
            pos: 0,
            tick: 0,
        };
        let (parsed, report) = read_log_with_policy(r, &RecoveryPolicy::Strict).unwrap();
        assert_logs_equal(&parsed, &log);
        assert!(report.is_clean());
    }
}
