//! Timestamps, day indices and node identifiers.
//!
//! The Renren trace spans 771 days; every event in the paper carries an
//! absolute timestamp. We represent time as whole **seconds since the start
//! of the trace** (`Time`), which gives sub-day resolution for inter-arrival
//! statistics while staying integral (and therefore hashable, orderable and
//! exactly reproducible). A `Day` is the coarse index used for snapshotting.

use std::fmt;

/// Number of seconds in one trace day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// A point in trace time, in whole seconds since the first event.
///
/// `Time` is `Copy`, 8 bytes, and totally ordered, so it can be used as a
/// sort key for event logs and as a binary-search probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A day index (day 0 is the day of the first event).
pub type Day = u32;

impl Time {
    /// The zero timestamp (start of the trace).
    pub const ZERO: Time = Time(0);

    /// Construct a timestamp from a whole number of days.
    pub fn from_days(days: u64) -> Self {
        Time(days * SECONDS_PER_DAY)
    }

    /// Construct a timestamp from a fractional number of days.
    ///
    /// Negative inputs saturate to zero; this keeps generator arithmetic
    /// (which subtracts jitter) safe without panicking.
    pub fn from_days_f64(days: f64) -> Self {
        if days <= 0.0 {
            Time(0)
        } else {
            Time((days * SECONDS_PER_DAY as f64).round() as u64)
        }
    }

    /// The day index this timestamp falls in.
    pub fn day(self) -> Day {
        (self.0 / SECONDS_PER_DAY) as Day
    }

    /// This timestamp expressed in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / SECONDS_PER_DAY as f64
    }

    /// Raw seconds since trace start.
    pub fn seconds(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`, as a `Time`-valued duration.
    pub fn since(self, earlier: Time) -> Time {
        Time(self.0.saturating_sub(earlier.0))
    }

    /// Add a duration expressed in seconds.
    pub fn plus_seconds(self, secs: u64) -> Time {
        Time(self.0 + secs)
    }

    /// Add a duration expressed in fractional days.
    pub fn plus_days_f64(self, days: f64) -> Time {
        Time(self.0 + Time::from_days_f64(days).0)
    }

    /// First instant of the given day.
    pub fn day_start(day: Day) -> Time {
        Time(day as u64 * SECONDS_PER_DAY)
    }

    /// First instant *after* the given day (i.e. start of `day + 1`).
    pub fn day_end(day: Day) -> Time {
        Time((day as u64 + 1) * SECONDS_PER_DAY)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}+{}s", self.day(), self.0 % SECONDS_PER_DAY)
    }
}

/// A node (user) identifier: dense, zero-based.
///
/// Node ids are assigned in arrival order by the trace generator, so
/// `NodeId(k)` is always the `k`-th user to join (this mirrors how the
/// anonymised Renren data numbered accounts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_roundtrip() {
        for d in [0u64, 1, 5, 386, 770] {
            assert_eq!(Time::from_days(d).day(), d as Day);
        }
    }

    #[test]
    fn fractional_days() {
        let t = Time::from_days_f64(1.5);
        assert_eq!(t.0, SECONDS_PER_DAY + SECONDS_PER_DAY / 2);
        assert_eq!(t.day(), 1);
        assert!((t.as_days_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_days_saturate() {
        assert_eq!(Time::from_days_f64(-3.0), Time::ZERO);
    }

    #[test]
    fn since_is_saturating() {
        let a = Time(10);
        let b = Time(30);
        assert_eq!(b.since(a).0, 20);
        assert_eq!(a.since(b).0, 0);
    }

    #[test]
    fn day_bounds() {
        assert_eq!(Time::day_start(3).0, 3 * SECONDS_PER_DAY);
        assert_eq!(Time::day_end(3).0, 4 * SECONDS_PER_DAY);
        assert_eq!(Time::day_end(3).day(), 4);
    }

    #[test]
    fn ordering() {
        assert!(Time(5) < Time(6));
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_days(2).plus_seconds(7).to_string(), "d2+7s");
        assert_eq!(NodeId(42).to_string(), "n42");
    }
}
