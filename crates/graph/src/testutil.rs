//! Deterministic fault injection for I/O and compute robustness tests.
//!
//! [`ChaosReader`] and [`ChaosWriter`] wrap any `Read`/`Write` and inject
//! the failure modes real storage exhibits — short reads, `EINTR`
//! ([`std::io::ErrorKind::Interrupted`]), mid-stream truncation, bit
//! corruption, and write failures partway through — driven by a seeded
//! deterministic generator so every failing test case replays exactly.
//!
//! [`ChaosTaskPlan`] is the compute-plane analogue: a seeded (or
//! explicitly scheduled) mapping from `(task key, attempt)` to a
//! [`ChaosAction`] — panic, delay, transient or fatal error — used to
//! drive the supervised executor (`osn_metrics::supervisor`)
//! deterministically in tests. Because the plan is a pure function of its
//! inputs, tests can replay it as an oracle and predict exactly which
//! tasks must fail, retry, or be quarantined.
//!
//! This module is part of the public API (rather than `#[cfg(test)]`) so
//! integration tests in other crates and the workspace root can use it;
//! production code has no reason to.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

/// SplitMix64: small, seedable, and good enough to schedule faults.
#[derive(Debug, Clone)]
struct Splitmix {
    state: u64,
}

impl Splitmix {
    fn new(seed: u64) -> Self {
        Splitmix { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `1 / one_in` (never for `one_in == 0`).
    fn one_in(&mut self, one_in: u32) -> bool {
        one_in > 0 && self.next_u64().is_multiple_of(one_in as u64)
    }

    /// Uniform value in `1..=max`.
    fn upto(&mut self, max: usize) -> usize {
        1 + (self.next_u64() as usize) % max
    }
}

/// Fault plan for a [`ChaosReader`].
#[derive(Debug, Clone, Default)]
pub struct ChaosReaderConfig {
    /// Return `ErrorKind::Interrupted` roughly one call in this many
    /// (0 disables).
    pub interrupt_one_in: u32,
    /// Cap each read at a random length in `1..=short_read_max`
    /// (0 disables short reads).
    pub short_read_max: usize,
    /// Flip one random bit per read call roughly one call in this many
    /// (0 disables corruption).
    pub corrupt_one_in: u32,
    /// Report end-of-stream after this many bytes, simulating a truncated
    /// file.
    pub truncate_at: Option<u64>,
}

impl ChaosReaderConfig {
    /// Interrupt-heavy, short-read-heavy plan with intact data — a reader
    /// that retries correctly must survive this unchanged.
    pub fn flaky() -> Self {
        ChaosReaderConfig {
            interrupt_one_in: 3,
            short_read_max: 7,
            ..Self::default()
        }
    }
}

/// A `Read` adapter that injects deterministic faults.
#[derive(Debug)]
pub struct ChaosReader<R> {
    inner: R,
    cfg: ChaosReaderConfig,
    rng: Splitmix,
    offset: u64,
}

impl<R: Read> ChaosReader<R> {
    /// Wrap `inner` with the given fault plan; equal seeds give equal
    /// fault schedules.
    pub fn new(inner: R, seed: u64, cfg: ChaosReaderConfig) -> Self {
        ChaosReader {
            inner,
            cfg,
            rng: Splitmix::new(seed),
            offset: 0,
        }
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(limit) = self.cfg.truncate_at {
            if self.offset >= limit {
                return Ok(0);
            }
        }
        if self.rng.one_in(self.cfg.interrupt_one_in) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
        }
        let mut len = buf.len();
        if self.cfg.short_read_max > 0 {
            len = len.min(self.rng.upto(self.cfg.short_read_max));
        }
        if let Some(limit) = self.cfg.truncate_at {
            len = len.min((limit - self.offset) as usize);
        }
        let n = self.inner.read(&mut buf[..len])?;
        if n > 0 && self.rng.one_in(self.cfg.corrupt_one_in) {
            let byte = self.rng.next_u64() as usize % n;
            let bit = self.rng.next_u64() % 8;
            buf[byte] ^= 1 << bit;
        }
        self.offset += n as u64;
        Ok(n)
    }
}

/// Fault plan for a [`ChaosWriter`].
#[derive(Debug, Clone, Default)]
pub struct ChaosWriterConfig {
    /// Return `ErrorKind::Interrupted` roughly one call in this many
    /// (0 disables).
    pub interrupt_one_in: u32,
    /// Cap each write at a random length in `1..=short_write_max`
    /// (0 disables short writes).
    pub short_write_max: usize,
    /// Fail every write after this many bytes went through, simulating a
    /// full disk or a crashed process mid-write.
    pub fail_after: Option<u64>,
}

/// A `Write` adapter that injects deterministic faults.
#[derive(Debug)]
pub struct ChaosWriter<W> {
    inner: W,
    cfg: ChaosWriterConfig,
    rng: Splitmix,
    written: u64,
}

impl<W: Write> ChaosWriter<W> {
    /// Wrap `inner` with the given fault plan; equal seeds give equal
    /// fault schedules.
    pub fn new(inner: W, seed: u64, cfg: ChaosWriterConfig) -> Self {
        ChaosWriter {
            inner,
            cfg,
            rng: Splitmix::new(seed),
            written: 0,
        }
    }

    /// Bytes successfully written so far.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(limit) = self.cfg.fail_after {
            if self.written >= limit {
                return Err(io::Error::other("injected write failure (disk full)"));
            }
        }
        if self.rng.one_in(self.cfg.interrupt_one_in) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
        }
        let mut len = buf.len();
        if self.cfg.short_write_max > 0 {
            len = len.min(self.rng.upto(self.cfg.short_write_max));
        }
        if let Some(limit) = self.cfg.fail_after {
            len = len.min((limit - self.written) as usize).max(1);
        }
        let n = self.inner.write(&buf[..len])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The `slow_append` chaos mode: a writer that lands every append in
/// **two** flushes with a pause in between, deterministically exposing
/// the torn-tail window a live reader must treat as "not yet written".
///
/// Two styles of use:
///
/// * Threaded drills call [`SlowAppendWriter::append_slow`], which
///   flushes the first half, sleeps the configured pause (giving a
///   concurrently polling reader time to observe the torn state), then
///   flushes the rest.
/// * Deterministic unit tests call [`SlowAppendWriter::append_torn`] and
///   [`SlowAppendWriter::complete`] themselves, polling the reader in
///   between with no timing dependence at all.
///
/// The split point is a pure function of the buffer length (its
/// midpoint), so equal inputs tear identically on every run.
#[derive(Debug)]
pub struct SlowAppendWriter<W> {
    inner: W,
    pause: Duration,
    flushes: u64,
}

impl<W: Write> SlowAppendWriter<W> {
    /// Wrap `inner`; `pause` is the torn-window duration for
    /// [`append_slow`](SlowAppendWriter::append_slow).
    pub fn new(inner: W, pause: Duration) -> Self {
        SlowAppendWriter {
            inner,
            pause,
            flushes: 0,
        }
    }

    /// Where a buffer of this length tears: its midpoint.
    pub fn split_point(len: usize) -> usize {
        len / 2
    }

    /// Write and flush only the first half of `buf`, leaving the file in
    /// the torn state. Returns the split offset to pass to
    /// [`complete`](SlowAppendWriter::complete).
    pub fn append_torn(&mut self, buf: &[u8]) -> io::Result<usize> {
        let split = Self::split_point(buf.len());
        self.inner.write_all(&buf[..split])?;
        self.inner.flush()?;
        self.flushes += 1;
        Ok(split)
    }

    /// Write and flush the remainder of a previously torn append.
    pub fn complete(&mut self, buf: &[u8], split: usize) -> io::Result<()> {
        self.inner.write_all(&buf[split..])?;
        self.inner.flush()?;
        self.flushes += 1;
        Ok(())
    }

    /// One full append as two flushes separated by the configured pause.
    pub fn append_slow(&mut self, buf: &[u8]) -> io::Result<()> {
        let split = self.append_torn(buf)?;
        if !self.pause.is_zero() {
            std::thread::sleep(self.pause);
        }
        self.complete(buf, split)
    }

    /// How many flushes have landed (two per completed append).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

// ---------------------------------------------------------------------------
// Compute-plane fault injection
// ---------------------------------------------------------------------------

/// What a chaos plan tells one task attempt to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosAction {
    /// Run normally.
    None,
    /// Panic with the given message (exercises `catch_unwind` isolation).
    Panic(String),
    /// Sleep this many milliseconds before running (exercises deadlines).
    Delay(u64),
    /// Fail with a retryable error (exercises retry/backoff).
    Transient(String),
    /// Fail with a non-retryable error.
    Fatal(String),
}

/// One explicitly scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChaosRule {
    key: u64,
    /// `None` = every attempt of this task; `Some(n)` = only attempt `n`.
    attempt: Option<u32>,
    action: ChaosAction,
}

/// Fault rates for a seeded random plan. Each is a `1 / one_in`
/// probability per `(key, attempt)` pair (0 disables that fault class).
/// Panic takes precedence over transient, transient over delay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosRates {
    /// Inject a panic roughly one attempt in this many.
    pub panic_one_in: u32,
    /// Inject a transient error roughly one attempt in this many.
    pub transient_one_in: u32,
    /// Inject a delay roughly one attempt in this many.
    pub delay_one_in: u32,
    /// Delay length in `1..=delay_max_ms` when a delay fires.
    pub delay_max_ms: u64,
}

/// A deterministic schedule of compute faults, keyed by `(task key,
/// attempt)`. The task key is chosen by the pipeline under test (snapshot
/// day, figure number, plain index — whatever identifies the task
/// stably); attempts are 1-based.
///
/// `action_for` is a pure function, so the same plan consulted by the
/// executor and by a test oracle always agrees — a test can predict the
/// exact set of failures a supervised run must report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosTaskPlan {
    rules: Vec<ChaosRule>,
    seeded: Option<(u64, ChaosRates)>,
}

impl ChaosTaskPlan {
    /// A plan with faults drawn deterministically from `seed` at the given
    /// rates. Equal seeds give equal schedules.
    pub fn seeded(seed: u64, rates: ChaosRates) -> Self {
        ChaosTaskPlan {
            rules: Vec::new(),
            seeded: Some((seed, rates)),
        }
    }

    /// Add an explicitly scheduled fault for task `key`. `attempt = None`
    /// fires on every attempt (the task can never succeed); `Some(n)`
    /// fires only on attempt `n` (a retry recovers). Scheduled rules take
    /// precedence over the seeded background rates.
    pub fn with_rule(mut self, key: u64, attempt: Option<u32>, action: ChaosAction) -> Self {
        self.rules.push(ChaosRule {
            key,
            attempt,
            action,
        });
        self
    }

    /// The action task `key` must take on its `attempt`-th try (1-based).
    pub fn action_for(&self, key: u64, attempt: u32) -> ChaosAction {
        for rule in &self.rules {
            if rule.key == key && rule.attempt.is_none_or(|a| a == attempt) {
                return rule.action.clone();
            }
        }
        if let Some((seed, rates)) = &self.seeded {
            // Mix seed, key, and attempt into an independent stream per
            // (key, attempt) pair.
            let mut rng = Splitmix::new(
                seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((attempt as u64) << 48),
            );
            if rng.one_in(rates.panic_one_in) {
                return ChaosAction::Panic(format!("chaos panic (key {key}, attempt {attempt})"));
            }
            if rng.one_in(rates.transient_one_in) {
                return ChaosAction::Transient(format!(
                    "chaos transient fault (key {key}, attempt {attempt})"
                ));
            }
            if rng.one_in(rates.delay_one_in) && rates.delay_max_ms > 0 {
                return ChaosAction::Delay(1 + rng.next_u64() % rates.delay_max_ms);
            }
        }
        ChaosAction::None
    }

    /// True when the plan can never fire (no rules, no seeded rates).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.seeded.is_none()
    }

    /// Parse a comma-separated spec of scheduled faults, e.g.
    /// `panic@12`, `panic@12#1,delay:200@5`, `transient@7#2,fatal@9`.
    ///
    /// Grammar per entry: `<action>@<key>[#<attempt>]` with `action` one
    /// of `panic`, `transient`, `fatal`, or `delay:<ms>`. Without
    /// `#<attempt>` the fault fires on every attempt.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = ChaosTaskPlan::default();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (action_str, target) = entry
                .split_once('@')
                .ok_or_else(|| format!("chaos entry '{entry}' is missing '@<key>'"))?;
            let (key_str, attempt) = match target.split_once('#') {
                Some((k, a)) => {
                    let a: u32 = a
                        .parse()
                        .map_err(|_| format!("bad attempt '{a}' in chaos entry '{entry}'"))?;
                    (k, Some(a))
                }
                None => (target, None),
            };
            let key: u64 = key_str
                .parse()
                .map_err(|_| format!("bad key '{key_str}' in chaos entry '{entry}'"))?;
            let action = match action_str {
                "panic" => ChaosAction::Panic(format!("injected panic for task key {key}")),
                "transient" => {
                    ChaosAction::Transient(format!("injected transient fault for task key {key}"))
                }
                "fatal" => ChaosAction::Fatal(format!("injected fatal fault for task key {key}")),
                other => match other.split_once(':') {
                    Some(("delay", ms)) => ChaosAction::Delay(
                        ms.parse()
                            .map_err(|_| format!("bad delay '{ms}' in chaos entry '{entry}'"))?,
                    ),
                    _ => {
                        return Err(format!(
                            "unknown chaos action '{action_str}' \
                             (panic|transient|fatal|delay:<ms>)"
                        ))
                    }
                },
            };
            plan.rules.push(ChaosRule {
                key,
                attempt,
                action,
            });
        }
        Ok(plan)
    }
}

// ---------------------------------------------------------------------------
// Chaos HTTP clients — misbehaving peers for exercising `osn serve`.
//
// These are the network-plane analogue of [`ChaosReader`]: deliberately
// hostile or broken HTTP/1.1 clients (slow-loris writers, half-closed
// sockets, header floods) plus one honest blocking client, all built on
// `std::net::TcpStream` so server tests need no extra dependencies.
// ---------------------------------------------------------------------------

/// A parsed HTTP/1.1 response from one of the chaos clients.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Everything after the blank line (responses here always close the
    /// connection, so the body is read to EOF).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (empty string if it is not valid UTF-8).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

/// Read from `stream` until EOF or `deadline`, whichever comes first,
/// returning whatever arrived. Timeouts are treated as end-of-data, not
/// errors, so callers can inspect partial responses from a server that
/// cut them off.
fn read_until_eof_or_deadline(stream: &TcpStream, deadline: Instant) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut s = stream;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        // set_read_timeout(Some(0)) is an error, so clamp upward.
        let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))));
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    buf
}

/// Send `raw` to `addr` and parse whatever comes back before `timeout`.
///
/// This is the honest client: one burst, then read to EOF. Errors only
/// on connect failure or a response too mangled to parse.
pub fn http_request_raw(addr: &str, raw: &[u8], timeout: Duration) -> io::Result<HttpResponse> {
    let deadline = Instant::now() + timeout;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(raw)?;
    let _ = stream.flush();
    let bytes = read_until_eof_or_deadline(&stream, deadline);
    if bytes.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "server closed without responding",
        ));
    }
    parse_response(&bytes)
}

/// Plain `GET path` with `Connection: close`.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> io::Result<HttpResponse> {
    let req = format!("GET {path} HTTP/1.1\r\nHost: osn\r\nConnection: close\r\n\r\n");
    http_request_raw(addr, req.as_bytes(), timeout)
}

/// `POST path` with a body, `Connection: close`, and arbitrary extra
/// headers (`("Authorization", "Bearer t")`-style pairs). The write-plane
/// analogue of [`http_get`], for drills against `POST /v1/events`.
pub fn http_post(
    addr: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let mut req = format!("POST {path} HTTP/1.1\r\nHost: osn\r\nConnection: close\r\n");
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    let mut raw = req.into_bytes();
    raw.extend_from_slice(body);
    http_request_raw(addr, &raw, timeout)
}

/// `GET path`, then immediately half-close the write side (`shutdown(Write)`)
/// before reading. A robust server must still answer: FIN on the client's
/// send direction is not an abort.
pub fn http_get_half_close(addr: &str, path: &str, timeout: Duration) -> io::Result<HttpResponse> {
    let deadline = Instant::now() + timeout;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_write_timeout(Some(timeout))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: osn\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Write);
    let bytes = read_until_eof_or_deadline(&stream, deadline);
    if bytes.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "server closed without responding",
        ));
    }
    parse_response(&bytes)
}

/// A persistent (keep-alive) HTTP/1.1 client: many requests per
/// connection, responses framed by `Content-Length` instead of EOF.
/// Drives the server's pipelining, parking, and response-cache paths;
/// the `Connection: close` helpers above cannot reach them.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the end of the last parsed response (the head of
    /// the next pipelined response).
    buf: Vec<u8>,
}

impl HttpClient {
    /// Open a persistent connection.
    pub fn connect(addr: &str) -> io::Result<HttpClient> {
        Ok(HttpClient {
            stream: TcpStream::connect(addr)?,
            buf: Vec::new(),
        })
    }

    /// Write raw bytes (for pipelining several requests in one burst, or
    /// splitting a request across arbitrary chunk boundaries).
    pub fn send_raw(&mut self, raw: &[u8]) -> io::Result<()> {
        self.stream.write_all(raw)?;
        self.stream.flush()
    }

    /// Send `GET path` with optional extra headers, keeping the
    /// connection open.
    pub fn send_get(&mut self, path: &str, headers: &[(&str, &str)]) -> io::Result<()> {
        let mut req = format!("GET {path} HTTP/1.1\r\nHost: osn\r\n");
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        req.push_str("\r\n");
        self.send_raw(req.as_bytes())
    }

    /// Send `POST path` with a body, keeping the connection open.
    pub fn send_post(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<()> {
        let mut req = format!("POST {path} HTTP/1.1\r\nHost: osn\r\n");
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        req.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        let mut raw = req.into_bytes();
        raw.extend_from_slice(body);
        self.send_raw(&raw)
    }

    /// Read exactly one response, framed by its `Content-Length` header.
    /// Bytes past the response (the next pipelined response) stay
    /// buffered for the next call.
    pub fn read_response(&mut self, timeout: Duration) -> io::Result<HttpResponse> {
        let deadline = Instant::now() + timeout;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        // Head first.
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            self.fill(deadline)?;
        };
        let head = parse_response(&self.buf[..head_end + 4])?;
        let len: usize = head
            .header("Content-Length")
            .ok_or_else(|| bad("response without Content-Length on a keep-alive connection"))?
            .parse()
            .map_err(|_| bad("unparseable Content-Length"))?;
        let total = head_end + 4 + len;
        while self.buf.len() < total {
            self.fill(deadline)?;
        }
        let body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(HttpResponse { body, ..head })
    }

    /// One round trip: `GET path`, read the framed response.
    pub fn get(&mut self, path: &str, timeout: Duration) -> io::Result<HttpResponse> {
        self.get_with(path, &[], timeout)
    }

    /// One round trip with extra request headers (e.g.
    /// `("Accept-Encoding", "gzip")`).
    pub fn get_with(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
        timeout: Duration,
    ) -> io::Result<HttpResponse> {
        self.send_get(path, headers)?;
        self.read_response(timeout)
    }

    /// Half-close the write side (tests of server-side hangup handling).
    pub fn shutdown_write(&self) {
        let _ = self.stream.shutdown(Shutdown::Write);
    }

    fn fill(&mut self, deadline: Instant) -> io::Result<()> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "deadline while reading response",
            ));
        }
        self.stream
            .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed mid-response",
            )),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// What became of a deliberately hostile connection.
#[derive(Debug)]
pub enum ChaosHttpOutcome {
    /// The server cut the connection (or timed it out) after the client
    /// had sent this many bytes, without sending a response.
    Cut {
        /// Bytes the client managed to send first.
        bytes_sent: usize,
    },
    /// The server answered (an error status, typically) and closed.
    Answered {
        /// Bytes the client managed to send first.
        bytes_sent: usize,
        /// The parsed response.
        response: HttpResponse,
    },
    /// The client gave up first: it hit its own byte budget without the
    /// server ever cutting it off. For a slow-loris drill this outcome
    /// means the server's header deadline is NOT working.
    Exhausted {
        /// Bytes sent before giving up.
        bytes_sent: usize,
    },
}

impl ChaosHttpOutcome {
    /// True unless the client exhausted its budget — i.e. the server
    /// terminated the exchange one way or another.
    pub fn server_terminated(&self) -> bool {
        !matches!(self, ChaosHttpOutcome::Exhausted { .. })
    }
}

/// Drain any server bytes already buffered on `stream` and classify.
fn finish_chaos(stream: &TcpStream, bytes_sent: usize, deadline: Instant) -> ChaosHttpOutcome {
    let bytes = read_until_eof_or_deadline(stream, deadline);
    match parse_response(&bytes) {
        Ok(response) => ChaosHttpOutcome::Answered {
            bytes_sent,
            response,
        },
        Err(_) => ChaosHttpOutcome::Cut { bytes_sent },
    }
}

/// Slow-loris attacker: trickle a syntactically endless request head one
/// byte every `pause`, up to `max_bytes`, and report how the server
/// reacted. A hardened server cuts the connection at its header deadline
/// no matter how steadily the bytes drip in.
pub fn slow_loris(
    addr: &str,
    pause: Duration,
    max_bytes: usize,
    timeout: Duration,
) -> io::Result<ChaosHttpOutcome> {
    let deadline = Instant::now() + timeout;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_write_timeout(Some(timeout))?;
    let mut script: Vec<u8> = b"GET /v1/days HTTP/1.1\r\n".to_vec();
    while script.len() < max_bytes {
        script.extend_from_slice(b"X-Drip: aaaaaaaa\r\n");
    }
    let mut sent = 0usize;
    for &b in script.iter().take(max_bytes) {
        if Instant::now() >= deadline {
            break;
        }
        if stream.write_all(&[b]).is_err() {
            // Reset/EPIPE: the server gave up on us mid-drip.
            return Ok(finish_chaos(&stream, sent, deadline));
        }
        sent += 1;
        // Did the server respond or hang up while we were dripping?
        let _ = stream.set_read_timeout(Some(pause.max(Duration::from_millis(1))));
        let mut probe = [0u8; 512];
        match (&stream).read(&mut probe) {
            Ok(_) => {
                // 0 = clean close, n = an early error response: either way
                // the server has terminated the exchange.
                return Ok(finish_chaos(&stream, sent, deadline));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(finish_chaos(&stream, sent, deadline)),
        }
    }
    if Instant::now() >= deadline {
        return Ok(finish_chaos(&stream, sent, deadline));
    }
    Ok(ChaosHttpOutcome::Exhausted { bytes_sent: sent })
}

/// Header flood: a single burst carrying `lines` junk header lines. The
/// server should refuse (431/400) or cut the connection once its header
/// budget is exceeded, never buffer without bound.
pub fn header_flood(addr: &str, lines: usize, timeout: Duration) -> io::Result<ChaosHttpOutcome> {
    let deadline = Instant::now() + timeout;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_write_timeout(Some(timeout))?;
    let mut req = String::from("GET /v1/days HTTP/1.1\r\nHost: osn\r\n");
    for i in 0..lines {
        req.push_str(&format!("X-Flood-{i}: {:0>64}\r\n", i));
    }
    req.push_str("Connection: close\r\n\r\n");
    let mut sent = 0usize;
    for chunk in req.as_bytes().chunks(4096) {
        match stream.write(chunk) {
            Ok(n) => sent += n,
            // Server already slammed the door mid-flood.
            Err(_) => return Ok(finish_chaos(&stream, sent, deadline)),
        }
    }
    let _ = stream.flush();
    Ok(finish_chaos(&stream, sent, deadline))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_reader_is_deterministic() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let cfg = ChaosReaderConfig {
            interrupt_one_in: 4,
            short_read_max: 5,
            corrupt_one_in: 9,
            truncate_at: Some(1000),
        };
        let run = |seed| {
            let mut r = ChaosReader::new(&data[..], seed, cfg.clone());
            let mut out = Vec::new();
            let mut buf = [0u8; 64];
            loop {
                match r.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => out.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            out
        };
        assert_eq!(run(7), run(7), "same seed must replay the same faults");
        assert_eq!(run(7).len(), 1000, "truncation point is exact");
    }

    #[test]
    fn flaky_reader_preserves_data() {
        let data = b"the quick brown fox".repeat(100);
        let mut r = ChaosReader::new(&data[..], 11, ChaosReaderConfig::flaky());
        let mut out = Vec::new();
        let mut buf = [0u8; 32];
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out, data, "interrupts and short reads must not lose bytes");
    }

    #[test]
    fn chaos_writer_fails_after_limit() {
        let mut sink = Vec::new();
        let mut w = ChaosWriter::new(
            &mut sink,
            3,
            ChaosWriterConfig {
                fail_after: Some(10),
                ..ChaosWriterConfig::default()
            },
        );
        let mut wrote = 0usize;
        let err = loop {
            match w.write(b"abcdef") {
                Ok(n) => wrote += n,
                Err(e) => break e,
            }
        };
        assert!(wrote <= 12, "at most one write may straddle the limit");
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn slow_append_tears_every_write_in_two() {
        let mut w = SlowAppendWriter::new(Vec::new(), Duration::ZERO);
        let payload = b"0123456789";
        let split = w.append_torn(payload).unwrap();
        assert_eq!(split, 5, "split point is the deterministic midpoint");
        assert_eq!(w.into_inner(), b"01234", "only the first half is flushed");

        let mut w = SlowAppendWriter::new(Vec::new(), Duration::ZERO);
        w.append_slow(payload).unwrap();
        w.append_slow(b"ab").unwrap();
        assert_eq!(w.flushes(), 4, "two flushes per append");
        assert_eq!(
            w.into_inner(),
            b"0123456789ab",
            "no bytes lost or reordered"
        );
    }

    #[test]
    fn chaos_plan_rules_match_key_and_attempt() {
        let plan = ChaosTaskPlan::default()
            .with_rule(12, None, ChaosAction::Panic("boom".into()))
            .with_rule(5, Some(1), ChaosAction::Transient("flaky".into()));
        assert_eq!(plan.action_for(12, 1), ChaosAction::Panic("boom".into()));
        assert_eq!(plan.action_for(12, 3), ChaosAction::Panic("boom".into()));
        assert_eq!(
            plan.action_for(5, 1),
            ChaosAction::Transient("flaky".into())
        );
        assert_eq!(plan.action_for(5, 2), ChaosAction::None, "retry recovers");
        assert_eq!(plan.action_for(7, 1), ChaosAction::None);
        assert!(!plan.is_empty());
        assert!(ChaosTaskPlan::default().is_empty());
    }

    #[test]
    fn chaos_plan_seeded_is_deterministic_and_attempt_sensitive() {
        let rates = ChaosRates {
            panic_one_in: 3,
            transient_one_in: 3,
            delay_one_in: 4,
            delay_max_ms: 20,
        };
        let a = ChaosTaskPlan::seeded(42, rates);
        let b = ChaosTaskPlan::seeded(42, rates);
        let mut fired = 0;
        let mut attempt_sensitive = false;
        for key in 0..200u64 {
            assert_eq!(a.action_for(key, 1), b.action_for(key, 1));
            if a.action_for(key, 1) != ChaosAction::None {
                fired += 1;
            }
            if a.action_for(key, 1) != a.action_for(key, 2) {
                attempt_sensitive = true;
            }
        }
        assert!(fired > 20, "rates of 1/3 must fire often ({fired}/200)");
        assert!(attempt_sensitive, "attempt must change the outcome");
    }

    #[test]
    fn chaos_plan_spec_roundtrip() {
        let plan = ChaosTaskPlan::from_spec("panic@12#1, delay:200@5, transient@7, fatal@9#2")
            .expect("valid spec");
        assert!(matches!(plan.action_for(12, 1), ChaosAction::Panic(_)));
        assert_eq!(plan.action_for(12, 2), ChaosAction::None);
        assert_eq!(plan.action_for(5, 3), ChaosAction::Delay(200));
        assert!(matches!(plan.action_for(7, 4), ChaosAction::Transient(_)));
        assert!(matches!(plan.action_for(9, 2), ChaosAction::Fatal(_)));
        assert_eq!(plan.action_for(9, 1), ChaosAction::None);

        assert!(ChaosTaskPlan::from_spec("panic12").is_err());
        assert!(ChaosTaskPlan::from_spec("explode@3").is_err());
        assert!(ChaosTaskPlan::from_spec("panic@x").is_err());
        assert!(ChaosTaskPlan::from_spec("panic@3#y").is_err());
        assert!(ChaosTaskPlan::from_spec("delay:abc@3").is_err());
    }

    /// One-shot canned server: accepts a single connection, optionally
    /// reads the request, writes `reply`, closes. Returns its address.
    fn canned_server(reply: &'static [u8], read_first: bool) -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                if read_first {
                    let mut buf = [0u8; 4096];
                    let _ = s.read(&mut buf);
                }
                let _ = s.write_all(reply);
            }
        });
        addr
    }

    #[test]
    fn http_get_parses_status_headers_and_body() {
        let addr = canned_server(
            b"HTTP/1.1 200 OK\r\nContent-Type: text/csv\r\nRetry-After: 1\r\n\r\nday,x\n1,2\n",
            true,
        );
        let resp = http_get(&addr, "/v1/days", Duration::from_secs(2)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("text/csv"));
        assert_eq!(resp.header("RETRY-AFTER"), Some("1"));
        assert_eq!(resp.body_str(), "day,x\n1,2\n");
    }

    #[test]
    fn half_close_client_still_reads_the_response() {
        let addr = canned_server(b"HTTP/1.1 204 No Content\r\n\r\n", true);
        let resp = http_get_half_close(&addr, "/healthz", Duration::from_secs(2)).unwrap();
        assert_eq!(resp.status, 204);
        assert!(resp.body.is_empty());
    }

    #[test]
    fn chaos_outcomes_classify_cut_and_answer() {
        // A server that answers the flood with 431.
        let addr = canned_server(
            b"HTTP/1.1 431 Request Header Fields Too Large\r\n\r\n",
            true,
        );
        let out = header_flood(&addr, 50, Duration::from_secs(2)).unwrap();
        assert!(out.server_terminated());
        match out {
            ChaosHttpOutcome::Answered { response, .. } => assert_eq!(response.status, 431),
            other => panic!("expected Answered, got {other:?}"),
        }
        // A server that hangs up without a word.
        let addr = canned_server(b"", false);
        let out = header_flood(&addr, 50, Duration::from_secs(2)).unwrap();
        assert!(matches!(out, ChaosHttpOutcome::Cut { .. }), "{out:?}");
    }

    #[test]
    fn slow_loris_gives_up_against_a_patient_server() {
        // A listener that accepts and then reads forever without ever
        // closing: the client must exhaust its own byte budget and say so.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 1024];
                while matches!(s.read(&mut buf), Ok(n) if n > 0) {}
            }
        });
        let out = slow_loris(&addr, Duration::from_millis(1), 64, Duration::from_secs(5)).unwrap();
        assert!(
            matches!(out, ChaosHttpOutcome::Exhausted { bytes_sent: 64 }),
            "{out:?}"
        );
        assert!(!out.server_terminated());
        t.join().unwrap();
    }
}
