//! Deterministic fault injection for I/O robustness tests.
//!
//! [`ChaosReader`] and [`ChaosWriter`] wrap any `Read`/`Write` and inject
//! the failure modes real storage exhibits — short reads, `EINTR`
//! ([`std::io::ErrorKind::Interrupted`]), mid-stream truncation, bit
//! corruption, and write failures partway through — driven by a seeded
//! deterministic generator so every failing test case replays exactly.
//!
//! This module is part of the public API (rather than `#[cfg(test)]`) so
//! integration tests in other crates and the workspace root can use it;
//! production code has no reason to.

use std::io::{self, Read, Write};

/// SplitMix64: small, seedable, and good enough to schedule faults.
#[derive(Debug, Clone)]
struct Splitmix {
    state: u64,
}

impl Splitmix {
    fn new(seed: u64) -> Self {
        Splitmix { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `1 / one_in` (never for `one_in == 0`).
    fn one_in(&mut self, one_in: u32) -> bool {
        one_in > 0 && self.next_u64().is_multiple_of(one_in as u64)
    }

    /// Uniform value in `1..=max`.
    fn upto(&mut self, max: usize) -> usize {
        1 + (self.next_u64() as usize) % max
    }
}

/// Fault plan for a [`ChaosReader`].
#[derive(Debug, Clone, Default)]
pub struct ChaosReaderConfig {
    /// Return `ErrorKind::Interrupted` roughly one call in this many
    /// (0 disables).
    pub interrupt_one_in: u32,
    /// Cap each read at a random length in `1..=short_read_max`
    /// (0 disables short reads).
    pub short_read_max: usize,
    /// Flip one random bit per read call roughly one call in this many
    /// (0 disables corruption).
    pub corrupt_one_in: u32,
    /// Report end-of-stream after this many bytes, simulating a truncated
    /// file.
    pub truncate_at: Option<u64>,
}

impl ChaosReaderConfig {
    /// Interrupt-heavy, short-read-heavy plan with intact data — a reader
    /// that retries correctly must survive this unchanged.
    pub fn flaky() -> Self {
        ChaosReaderConfig {
            interrupt_one_in: 3,
            short_read_max: 7,
            ..Self::default()
        }
    }
}

/// A `Read` adapter that injects deterministic faults.
#[derive(Debug)]
pub struct ChaosReader<R> {
    inner: R,
    cfg: ChaosReaderConfig,
    rng: Splitmix,
    offset: u64,
}

impl<R: Read> ChaosReader<R> {
    /// Wrap `inner` with the given fault plan; equal seeds give equal
    /// fault schedules.
    pub fn new(inner: R, seed: u64, cfg: ChaosReaderConfig) -> Self {
        ChaosReader {
            inner,
            cfg,
            rng: Splitmix::new(seed),
            offset: 0,
        }
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(limit) = self.cfg.truncate_at {
            if self.offset >= limit {
                return Ok(0);
            }
        }
        if self.rng.one_in(self.cfg.interrupt_one_in) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
        }
        let mut len = buf.len();
        if self.cfg.short_read_max > 0 {
            len = len.min(self.rng.upto(self.cfg.short_read_max));
        }
        if let Some(limit) = self.cfg.truncate_at {
            len = len.min((limit - self.offset) as usize);
        }
        let n = self.inner.read(&mut buf[..len])?;
        if n > 0 && self.rng.one_in(self.cfg.corrupt_one_in) {
            let byte = self.rng.next_u64() as usize % n;
            let bit = self.rng.next_u64() % 8;
            buf[byte] ^= 1 << bit;
        }
        self.offset += n as u64;
        Ok(n)
    }
}

/// Fault plan for a [`ChaosWriter`].
#[derive(Debug, Clone, Default)]
pub struct ChaosWriterConfig {
    /// Return `ErrorKind::Interrupted` roughly one call in this many
    /// (0 disables).
    pub interrupt_one_in: u32,
    /// Cap each write at a random length in `1..=short_write_max`
    /// (0 disables short writes).
    pub short_write_max: usize,
    /// Fail every write after this many bytes went through, simulating a
    /// full disk or a crashed process mid-write.
    pub fail_after: Option<u64>,
}

/// A `Write` adapter that injects deterministic faults.
#[derive(Debug)]
pub struct ChaosWriter<W> {
    inner: W,
    cfg: ChaosWriterConfig,
    rng: Splitmix,
    written: u64,
}

impl<W: Write> ChaosWriter<W> {
    /// Wrap `inner` with the given fault plan; equal seeds give equal
    /// fault schedules.
    pub fn new(inner: W, seed: u64, cfg: ChaosWriterConfig) -> Self {
        ChaosWriter {
            inner,
            cfg,
            rng: Splitmix::new(seed),
            written: 0,
        }
    }

    /// Bytes successfully written so far.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(limit) = self.cfg.fail_after {
            if self.written >= limit {
                return Err(io::Error::other("injected write failure (disk full)"));
            }
        }
        if self.rng.one_in(self.cfg.interrupt_one_in) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
        }
        let mut len = buf.len();
        if self.cfg.short_write_max > 0 {
            len = len.min(self.rng.upto(self.cfg.short_write_max));
        }
        if let Some(limit) = self.cfg.fail_after {
            len = len.min((limit - self.written) as usize).max(1);
        }
        let n = self.inner.write(&buf[..len])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_reader_is_deterministic() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let cfg = ChaosReaderConfig {
            interrupt_one_in: 4,
            short_read_max: 5,
            corrupt_one_in: 9,
            truncate_at: Some(1000),
        };
        let run = |seed| {
            let mut r = ChaosReader::new(&data[..], seed, cfg.clone());
            let mut out = Vec::new();
            let mut buf = [0u8; 64];
            loop {
                match r.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => out.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            out
        };
        assert_eq!(run(7), run(7), "same seed must replay the same faults");
        assert_eq!(run(7).len(), 1000, "truncation point is exact");
    }

    #[test]
    fn flaky_reader_preserves_data() {
        let data = b"the quick brown fox".repeat(100);
        let mut r = ChaosReader::new(&data[..], 11, ChaosReaderConfig::flaky());
        let mut out = Vec::new();
        let mut buf = [0u8; 32];
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out, data, "interrupts and short reads must not lose bytes");
    }

    #[test]
    fn chaos_writer_fails_after_limit() {
        let mut sink = Vec::new();
        let mut w = ChaosWriter::new(
            &mut sink,
            3,
            ChaosWriterConfig {
                fail_after: Some(10),
                ..ChaosWriterConfig::default()
            },
        );
        let mut wrote = 0usize;
        let err = loop {
            match w.write(b"abcdef") {
                Ok(n) => wrote += n,
                Err(e) => break e,
            }
        };
        assert!(wrote <= 12, "at most one write may straddle the limit");
        assert!(err.to_string().contains("disk full"));
    }
}
