//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Used by the v2 trace format in [`crate::io`] to checksum event-line
//! chunks and the whole-file footer. The table is generated at compile
//! time; the implementation matches the ubiquitous zlib/`cksum -o 3`
//! variant so checksums can be cross-checked with external tools.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum value.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE variant.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"N 0 core\nE 10 0 1\n";
        let mut h = Crc32::new();
        for chunk in data.chunks(3) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"E 86400 17 42\n";
        let base = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.to_vec();
                corrupted[i] ^= 1 << bit;
                assert_ne!(
                    crc32(&corrupted),
                    base,
                    "flip at byte {i} bit {bit} undetected"
                );
            }
        }
    }
}
