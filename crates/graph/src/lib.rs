//! # osn-graph — dynamic-graph substrate
//!
//! This crate is the foundation of the `multiscale-osn` workspace. It models
//! an evolving social network exactly the way the IMC 2012 Renren study
//! consumed it: as an append-only, time-ordered stream of node-arrival and
//! edge-arrival events, from which static snapshots are materialised on
//! demand.
//!
//! The main types are:
//!
//! * [`Time`] / [`NodeId`] — compact value types for timestamps (seconds
//!   since trace start) and node identifiers.
//! * [`Event`] / [`EventLog`] — a single timestamped creation event and a
//!   validated, time-sorted stream of them.
//! * [`DynamicGraph`] — a mutable adjacency structure that replays events
//!   incrementally and tracks per-node metadata (join time, origin
//!   network, degree).
//! * [`CsrGraph`] — a frozen compressed-sparse-row snapshot optimised for
//!   the read-heavy metric computations in `osn-metrics`.
//! * [`Replayer`] / [`DailySnapshots`] — drive a [`DynamicGraph`] forward
//!   through an [`EventLog`], yielding per-day (or per-k-days) snapshots.
//! * [`UnionFind`] — disjoint sets, used for connected components.
//!
//! Design notes (see DESIGN.md at the workspace root): everything here is
//! synchronous and allocation-conscious; the workload is CPU-bound graph
//! analytics, so there is no async machinery. All structures are `Send` so
//! snapshots can be fanned out to worker threads by `osn-metrics`.

pub mod atomicfile;
pub mod crc32;
pub mod csr;
pub mod dynamic;
pub mod event;
pub mod gzip;
pub mod io;
pub mod log;
pub mod snapshots;
pub mod tail;
pub mod testutil;
pub mod time;
pub mod unionfind;
pub mod view;
pub mod wal;

pub use csr::CsrGraph;
pub use dynamic::{ApplyError, DeltaObserver, DynamicGraph, NoDelta};
pub use event::{Event, EventKind, Origin};
pub use io::{IngestReport, ParseError, RecoveryPolicy};
pub use log::{EventLog, EventLogBuilder, LogError};
pub use snapshots::{CheckpointError, DailySnapshots, ReplayCheckpoint, Replayer};
pub use tail::{TailBatch, TailError, TailEvent, TailReader};
pub use time::{Day, NodeId, Time, SECONDS_PER_DAY};
pub use unionfind::UnionFind;
pub use view::GraphView;
pub use wal::{Wal, WalAck, WalError, WalEvent, WalEventKind, WalOpenReport, WalOptions, WalStats};
