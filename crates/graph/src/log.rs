//! The validated, time-ordered event stream.
//!
//! An [`EventLog`] is the canonical representation of a dynamic social
//! network in this workspace: every analysis in `osn-core` consumes one.
//! Logs are constructed through [`EventLogBuilder`], which enforces the
//! invariants the downstream code relies on:
//!
//! 1. events are sorted by time (ties keep insertion order);
//! 2. node ids are dense and appear before any edge that uses them;
//! 3. no self-loops and no duplicate edges.

use crate::event::{Event, EventKind, Origin};
use crate::time::{Day, NodeId, Time};
use std::fmt;

/// Errors raised while building an [`EventLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// An event's timestamp was earlier than its predecessor's.
    OutOfOrder {
        /// Index of the offending event.
        index: usize,
        /// Its timestamp.
        time: Time,
        /// The previous event's timestamp.
        prev: Time,
    },
    /// A node id skipped ahead (ids must be dense: 0, 1, 2, …).
    NonDenseNode {
        /// The id that was added.
        got: NodeId,
        /// The id that was expected.
        expected: NodeId,
    },
    /// An edge referenced a node that has not been added yet.
    UnknownNode {
        /// The unknown endpoint.
        node: NodeId,
    },
    /// An edge connected a node to itself.
    SelfLoop {
        /// The node in question.
        node: NodeId,
    },
    /// The same undirected edge was added twice.
    DuplicateEdge {
        /// Smaller endpoint.
        u: NodeId,
        /// Larger endpoint.
        v: NodeId,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::OutOfOrder { index, time, prev } => write!(
                f,
                "event {index} at {time} is earlier than its predecessor at {prev}"
            ),
            LogError::NonDenseNode { got, expected } => {
                write!(
                    f,
                    "node {got} added but {expected} was expected (ids must be dense)"
                )
            }
            LogError::UnknownNode { node } => write!(f, "edge references unknown node {node}"),
            LogError::SelfLoop { node } => write!(f, "self-loop on {node}"),
            LogError::DuplicateEdge { u, v } => write!(f, "duplicate edge {u}-{v}"),
        }
    }
}

impl std::error::Error for LogError {}

/// A validated, time-sorted stream of creation events.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
    num_nodes: u32,
    num_edges: u64,
    /// `origins[i]` is the origin network of `NodeId(i)`.
    origins: Vec<Origin>,
    /// `join_times[i]` is the creation time of `NodeId(i)`.
    join_times: Vec<Time>,
}

impl EventLog {
    /// All events, in time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total number of node-creation events.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Total number of edge-creation events.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Timestamp of the last event (zero for an empty log).
    pub fn end_time(&self) -> Time {
        self.events.last().map(|e| e.time).unwrap_or(Time::ZERO)
    }

    /// Day index of the last event.
    pub fn end_day(&self) -> Day {
        self.end_time().day()
    }

    /// The origin network of a node.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn origin(&self, node: NodeId) -> Origin {
        self.origins[node.index()]
    }

    /// The join (creation) time of a node.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn join_time(&self, node: NodeId) -> Time {
        self.join_times[node.index()]
    }

    /// Per-node origins, indexed by node id.
    pub fn origins(&self) -> &[Origin] {
        &self.origins
    }

    /// Per-node join times, indexed by node id.
    pub fn join_times(&self) -> &[Time] {
        &self.join_times
    }

    /// Index of the first event with `time >= t` (binary search).
    pub fn first_event_at_or_after(&self, t: Time) -> usize {
        self.events.partition_point(|e| e.time < t)
    }

    /// Iterate the edge events only, as `(time, u, v)` triples.
    pub fn edge_events(&self) -> impl Iterator<Item = (Time, NodeId, NodeId)> + '_ {
        self.events.iter().filter_map(|e| match e.kind {
            EventKind::AddEdge { u, v } => Some((e.time, u, v)),
            _ => None,
        })
    }

    /// Order-sensitive 64-bit fingerprint of the full event stream
    /// (FNV-1a over every event's time, kind and payload).
    ///
    /// Used by checkpoint files to refuse resuming against a different
    /// trace than the one the checkpoint was taken from. Not
    /// cryptographic — it guards against operator mistakes, not
    /// adversaries.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
        };
        for e in &self.events {
            mix(e.time.seconds());
            match e.kind {
                EventKind::AddNode { node, origin } => {
                    mix(1);
                    mix(node.0 as u64);
                    mix(origin as u64);
                }
                EventKind::AddEdge { u, v } => {
                    mix(2);
                    mix(u.0 as u64);
                    mix(v.0 as u64);
                }
            }
        }
        h
    }

    /// Count nodes and edges created on each day, over `0..=end_day`.
    ///
    /// Returns `(nodes_per_day, edges_per_day)`.
    pub fn daily_counts(&self) -> (Vec<u64>, Vec<u64>) {
        let days = self.end_day() as usize + 1;
        let mut nodes = vec![0u64; days];
        let mut edges = vec![0u64; days];
        for e in &self.events {
            let d = e.time.day() as usize;
            match e.kind {
                EventKind::AddNode { .. } => nodes[d] += 1,
                EventKind::AddEdge { .. } => edges[d] += 1,
            }
        }
        (nodes, edges)
    }
}

/// Incremental builder enforcing [`EventLog`]'s invariants.
///
/// Duplicate-edge detection uses a per-node sorted neighbour list, which
/// keeps the builder allocation-friendly for multi-million-edge traces.
#[derive(Debug, Default)]
pub struct EventLogBuilder {
    events: Vec<Event>,
    origins: Vec<Origin>,
    join_times: Vec<Time>,
    /// Sorted adjacency used only for duplicate detection.
    adj: Vec<Vec<u32>>,
    num_edges: u64,
    last_time: Time,
}

impl EventLogBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with capacity hints.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        EventLogBuilder {
            events: Vec::with_capacity(nodes + edges),
            origins: Vec::with_capacity(nodes),
            join_times: Vec::with_capacity(nodes),
            adj: Vec::with_capacity(nodes),
            num_edges: 0,
            last_time: Time::ZERO,
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> u32 {
        self.origins.len() as u32
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Append a node-creation event. The new node's id is returned and is
    /// always `NodeId(n)` where `n` is the number of nodes added before.
    pub fn add_node(&mut self, time: Time, origin: Origin) -> Result<NodeId, LogError> {
        self.check_time(time)?;
        let id = NodeId(self.origins.len() as u32);
        self.origins.push(origin);
        self.join_times.push(time);
        self.adj.push(Vec::new());
        self.events.push(Event::node(time, id, origin));
        Ok(id)
    }

    /// Append an edge-creation event between two existing nodes.
    pub fn add_edge(&mut self, time: Time, a: NodeId, b: NodeId) -> Result<(), LogError> {
        self.check_time(time)?;
        let n = self.origins.len() as u32;
        for node in [a, b] {
            if node.0 >= n {
                return Err(LogError::UnknownNode { node });
            }
        }
        if a == b {
            return Err(LogError::SelfLoop { node: a });
        }
        let (u, v) = if a.0 < b.0 { (a, b) } else { (b, a) };
        // Duplicate check against the smaller-degree endpoint's list.
        let (probe, other) = if self.adj[u.index()].len() <= self.adj[v.index()].len() {
            (u, v)
        } else {
            (v, u)
        };
        if self.adj[probe.index()].binary_search(&other.0).is_ok() {
            return Err(LogError::DuplicateEdge { u, v });
        }
        let pos = self.adj[u.index()].binary_search(&v.0).unwrap_err();
        self.adj[u.index()].insert(pos, v.0);
        let pos = self.adj[v.index()].binary_search(&u.0).unwrap_err();
        self.adj[v.index()].insert(pos, u.0);
        self.num_edges += 1;
        self.events.push(Event::edge(time, u, v));
        Ok(())
    }

    /// True if the undirected edge `a-b` has already been added.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a.index() >= self.adj.len() || b.index() >= self.adj.len() {
            return false;
        }
        let (probe, other) = if self.adj[a.index()].len() <= self.adj[b.index()].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[probe.index()].binary_search(&other.0).is_ok()
    }

    /// Current degree of a node (0 for unknown ids).
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj.get(node.index()).map_or(0, |v| v.len())
    }

    /// Current sorted neighbour list of a node (empty for unknown ids).
    ///
    /// Exposed so trace generators can implement triadic closure
    /// (friend-of-friend attachment) against the graph built so far.
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        self.adj.get(node.index()).map_or(&[], |v| v.as_slice())
    }

    fn check_time(&mut self, time: Time) -> Result<(), LogError> {
        if time < self.last_time {
            return Err(LogError::OutOfOrder {
                index: self.events.len(),
                time,
                prev: self.last_time,
            });
        }
        self.last_time = time;
        Ok(())
    }

    /// Finish building and return the validated log.
    pub fn build(self) -> EventLog {
        EventLog {
            num_nodes: self.origins.len() as u32,
            num_edges: self.num_edges,
            events: self.events,
            origins: self.origins,
            join_times: self.join_times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(d: u64) -> Time {
        Time::from_days(d)
    }

    #[test]
    fn build_small_log() {
        let mut b = EventLogBuilder::new();
        let a = b.add_node(t(0), Origin::Core).unwrap();
        let c = b.add_node(t(0), Origin::Core).unwrap();
        let d = b.add_node(t(1), Origin::Competitor).unwrap();
        b.add_edge(t(1), a, c).unwrap();
        b.add_edge(t(2), c, d).unwrap();
        let log = b.build();
        assert_eq!(log.num_nodes(), 3);
        assert_eq!(log.num_edges(), 2);
        assert_eq!(log.end_day(), 2);
        assert_eq!(log.origin(d), Origin::Competitor);
        assert_eq!(log.join_time(a), t(0));
    }

    #[test]
    fn rejects_out_of_order() {
        let mut b = EventLogBuilder::new();
        b.add_node(t(5), Origin::Core).unwrap();
        let err = b.add_node(t(4), Origin::Core).unwrap_err();
        assert!(matches!(err, LogError::OutOfOrder { .. }));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = EventLogBuilder::new();
        b.add_node(t(0), Origin::Core).unwrap();
        let err = b.add_edge(t(0), NodeId(0), NodeId(7)).unwrap_err();
        assert_eq!(err, LogError::UnknownNode { node: NodeId(7) });
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = EventLogBuilder::new();
        let a = b.add_node(t(0), Origin::Core).unwrap();
        assert_eq!(
            b.add_edge(t(0), a, a).unwrap_err(),
            LogError::SelfLoop { node: a }
        );
    }

    #[test]
    fn rejects_duplicate_edge_both_orders() {
        let mut b = EventLogBuilder::new();
        let a = b.add_node(t(0), Origin::Core).unwrap();
        let c = b.add_node(t(0), Origin::Core).unwrap();
        b.add_edge(t(1), a, c).unwrap();
        assert!(matches!(
            b.add_edge(t(1), a, c),
            Err(LogError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            b.add_edge(t(2), c, a),
            Err(LogError::DuplicateEdge { .. })
        ));
        assert!(b.has_edge(a, c));
        assert!(b.has_edge(c, a));
    }

    #[test]
    fn daily_counts_cover_gap_days() {
        let mut b = EventLogBuilder::new();
        let a = b.add_node(t(0), Origin::Core).unwrap();
        let c = b.add_node(t(0), Origin::Core).unwrap();
        b.add_edge(t(3), a, c).unwrap();
        let log = b.build();
        let (nodes, edges) = log.daily_counts();
        assert_eq!(nodes, vec![2, 0, 0, 0]);
        assert_eq!(edges, vec![0, 0, 0, 1]);
    }

    #[test]
    fn binary_search_boundary() {
        let mut b = EventLogBuilder::new();
        let a = b.add_node(t(0), Origin::Core).unwrap();
        let c = b.add_node(t(1), Origin::Core).unwrap();
        b.add_edge(t(2), a, c).unwrap();
        let log = b.build();
        assert_eq!(log.first_event_at_or_after(t(0)), 0);
        assert_eq!(log.first_event_at_or_after(t(1)), 1);
        assert_eq!(log.first_event_at_or_after(t(2)), 2);
        assert_eq!(log.first_event_at_or_after(t(3)), 3);
    }

    #[test]
    fn edge_event_iterator_skips_nodes() {
        let mut b = EventLogBuilder::new();
        let a = b.add_node(t(0), Origin::Core).unwrap();
        let c = b.add_node(t(0), Origin::Core).unwrap();
        b.add_edge(t(1), c, a).unwrap();
        let log = b.build();
        let edges: Vec<_> = log.edge_events().collect();
        assert_eq!(edges, vec![(t(1), a, c)]);
    }

    #[test]
    fn degree_tracking() {
        let mut b = EventLogBuilder::new();
        let a = b.add_node(t(0), Origin::Core).unwrap();
        let c = b.add_node(t(0), Origin::Core).unwrap();
        let d = b.add_node(t(0), Origin::Core).unwrap();
        b.add_edge(t(1), a, c).unwrap();
        b.add_edge(t(1), a, d).unwrap();
        assert_eq!(b.degree(a), 2);
        assert_eq!(b.degree(c), 1);
        assert_eq!(b.degree(NodeId(99)), 0);
    }
}
