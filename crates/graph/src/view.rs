//! A read-only view trait unifying [`CsrGraph`] and [`DynamicGraph`].
//!
//! The metric kernels in `osn-metrics` were originally written against
//! frozen [`CsrGraph`] snapshots. The incremental engine
//! (`osn_metrics::engine`) evaluates the same kernels directly on the
//! evolving [`DynamicGraph`] — skipping the per-day CSR freeze — so the
//! kernels are generic over this trait instead.
//!
//! **Byte-identity contract:** both implementations expose neighbour
//! lists sorted ascending and iterate edges in the same order
//! (`u` ascending, then `v` ascending with `u < v`). Any kernel written
//! against `GraphView` therefore performs bit-identical arithmetic on a
//! frozen snapshot and on the live graph at the same instant — the
//! property the batch-vs-incremental differential tests pin down.

use crate::csr::CsrGraph;
use crate::dynamic::DynamicGraph;
use crate::time::NodeId;

/// Read-only access to an undirected graph with sorted adjacency.
pub trait GraphView {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges.
    fn num_edges(&self) -> u64;

    /// Degree of a node.
    fn degree(&self, node: u32) -> usize;

    /// Neighbours of a node, sorted ascending.
    fn neighbors(&self, node: u32) -> &[u32];

    /// Iterate every undirected edge once, as `(u, v)` with `u < v`,
    /// `u` ascending then `v` ascending — the canonical order every
    /// edge-driven kernel relies on for bit-identical results.
    fn edges(&self) -> EdgesIter<'_, Self>
    where
        Self: Sized,
    {
        EdgesIter {
            g: self,
            u: 0,
            i: 0,
        }
    }
}

/// Iterator over the edges of any [`GraphView`] in canonical order.
#[derive(Debug)]
pub struct EdgesIter<'a, G: GraphView> {
    g: &'a G,
    u: u32,
    i: usize,
}

impl<G: GraphView> Iterator for EdgesIter<'_, G> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        let n = self.g.num_nodes() as u32;
        while self.u < n {
            let neigh = self.g.neighbors(self.u);
            while self.i < neigh.len() {
                let v = neigh[self.i];
                self.i += 1;
                if self.u < v {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.i = 0;
        }
        None
    }
}

impl GraphView for CsrGraph {
    fn num_nodes(&self) -> usize {
        CsrGraph::num_nodes(self)
    }

    fn num_edges(&self) -> u64 {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn degree(&self, node: u32) -> usize {
        CsrGraph::degree(self, node)
    }

    #[inline]
    fn neighbors(&self, node: u32) -> &[u32] {
        CsrGraph::neighbors(self, node)
    }
}

impl GraphView for DynamicGraph {
    fn num_nodes(&self) -> usize {
        DynamicGraph::num_nodes(self)
    }

    fn num_edges(&self) -> u64 {
        DynamicGraph::num_edges(self)
    }

    #[inline]
    fn degree(&self, node: u32) -> usize {
        DynamicGraph::degree(self, NodeId(node))
    }

    #[inline]
    fn neighbors(&self, node: u32) -> &[u32] {
        DynamicGraph::neighbors(self, NodeId(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Origin};
    use crate::time::Time;

    fn both_views() -> (DynamicGraph, CsrGraph) {
        let mut g = DynamicGraph::new();
        for id in 0..5u32 {
            g.apply(&Event::node(Time(id as u64), NodeId(id), Origin::Core))
                .unwrap();
        }
        for (t, (u, v)) in [(0, 1), (1, 2), (0, 2), (2, 3)].iter().enumerate() {
            g.apply(&Event::edge(Time(10 + t as u64), NodeId(*u), NodeId(*v)))
                .unwrap();
        }
        let csr = g.freeze();
        (g, csr)
    }

    fn edge_list<G: GraphView>(g: &G) -> Vec<(u32, u32)> {
        g.edges().collect()
    }

    #[test]
    fn views_agree() {
        let (dynamic, csr) = both_views();
        assert_eq!(GraphView::num_nodes(&dynamic), GraphView::num_nodes(&csr));
        assert_eq!(GraphView::num_edges(&dynamic), GraphView::num_edges(&csr));
        for u in 0..5u32 {
            assert_eq!(GraphView::degree(&dynamic, u), GraphView::degree(&csr, u));
            assert_eq!(
                GraphView::neighbors(&dynamic, u),
                GraphView::neighbors(&csr, u)
            );
        }
    }

    #[test]
    fn edges_iterate_in_canonical_order() {
        let (dynamic, csr) = both_views();
        let from_view = edge_list(&dynamic);
        // The inherent CsrGraph::edges is the historical reference order.
        let inherent: Vec<_> = csr.edges().collect();
        assert_eq!(from_view, inherent);
        assert_eq!(edge_list(&csr), inherent);
        assert_eq!(from_view, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = DynamicGraph::new();
        assert_eq!(g.edges().count(), 0);
    }
}
