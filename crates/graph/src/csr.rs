//! Frozen compressed-sparse-row snapshots.
//!
//! A [`CsrGraph`] is an immutable picture of the network at one instant,
//! laid out for cache-friendly scans: one `offsets` array of length
//! `N + 1` and one `targets` array of length `2E`. All the metric code in
//! `osn-metrics` and the Louvain implementation in `osn-community` operate
//! on this type.

use crate::time::{NodeId, Time};

/// Immutable CSR snapshot of an undirected graph.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
    taken_at: Time,
}

impl CsrGraph {
    /// Build from per-node **sorted** adjacency lists.
    ///
    /// Sortedness is a precondition (debug-asserted): membership queries
    /// use binary search.
    pub fn from_sorted_adjacency(adj: &[Vec<u32>], taken_at: Time) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let total: usize = adj.iter().map(|l| l.len()).sum();
        let mut targets = Vec::with_capacity(total);
        offsets.push(0u64);
        for list in adj {
            debug_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "adjacency must be sorted"
            );
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u64);
        }
        CsrGraph {
            offsets,
            targets,
            taken_at,
        }
    }

    /// Build from an undirected edge list over `n` nodes.
    ///
    /// Convenient for tests and generators; duplicate edges are *not*
    /// deduplicated here (feed validated input).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0u64; n];
        for &(u, v) in edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut targets = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for i in 0..n {
            targets[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }
        CsrGraph {
            offsets,
            targets,
            taken_at: Time::ZERO,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64 / 2
    }

    /// Instant this snapshot was taken at.
    pub fn taken_at(&self) -> Time {
        self.taken_at
    }

    /// Degree of a node.
    #[inline]
    pub fn degree(&self, node: u32) -> usize {
        (self.offsets[node as usize + 1] - self.offsets[node as usize]) as usize
    }

    /// Sorted neighbours of a node.
    #[inline]
    pub fn neighbors(&self, node: u32) -> &[u32] {
        &self.targets
            [self.offsets[node as usize] as usize..self.offsets[node as usize + 1] as usize]
    }

    /// True if the undirected edge `a-b` exists.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterate every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_nodes() as u32)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// Average degree `2E / N` (0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        let n = self.num_nodes();
        if n == 0 {
            0.0
        } else {
            self.targets.len() as f64 / n as f64
        }
    }

    /// Ids of all nodes with degree at least one.
    pub fn non_isolated_nodes(&self) -> Vec<u32> {
        (0..self.num_nodes() as u32)
            .filter(|&u| self.degree(u) > 0)
            .collect()
    }

    /// Convenience wrapper: neighbours of a [`NodeId`].
    pub fn neighbors_of(&self, node: NodeId) -> &[u32] {
        self.neighbors(node.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 0-2 triangle, 2-3 tail, 4 isolated
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(4), 0);
        assert!((g.average_degree() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_sorted_and_membership() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_iterated_once() {
        let g = triangle_plus_tail();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn from_sorted_adjacency_roundtrip() {
        let adj = vec![vec![1, 2], vec![0], vec![0]];
        let g = CsrGraph::from_sorted_adjacency(&adj, Time(7));
        assert_eq!(g.taken_at(), Time(7));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn non_isolated() {
        let g = triangle_plus_tail();
        assert_eq!(g.non_isolated_nodes(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }
}
