//! Creation events and node origin labels.

use crate::time::{NodeId, Time};
use std::fmt;

/// Which network a user originally joined.
///
/// The Renren trace contains two pre-merge populations (Xiaonei — which we
/// call the *core* network — and the competitor 5Q) plus everyone who
/// joined after the merge. The merge analysis (Figures 8–9 of the paper)
/// classifies every post-merge edge by the origins of its endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// The core network (Xiaonei/Renren in the paper).
    Core,
    /// The competitor network (5Q in the paper).
    Competitor,
    /// A user who joined after the two networks merged.
    PostMerge,
}

impl Origin {
    /// Short label used in CSV headers and tables.
    pub fn label(self) -> &'static str {
        match self {
            Origin::Core => "core",
            Origin::Competitor => "competitor",
            Origin::PostMerge => "postmerge",
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A user account was created.
    AddNode {
        /// The new node. Ids must be dense and assigned in arrival order.
        node: NodeId,
        /// Which network the account was created on.
        origin: Origin,
    },
    /// A friendship link was created. Edges are undirected; `u < v` is
    /// enforced by [`EventLogBuilder`](crate::log::EventLogBuilder) so each
    /// edge has a canonical form.
    AddEdge {
        /// Canonical smaller endpoint.
        u: NodeId,
        /// Canonical larger endpoint.
        v: NodeId,
    },
}

/// A timestamped creation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event occurred.
    pub time: Time,
    /// What occurred.
    pub kind: EventKind,
}

impl Event {
    /// Convenience constructor for a node arrival.
    pub fn node(time: Time, node: NodeId, origin: Origin) -> Self {
        Event {
            time,
            kind: EventKind::AddNode { node, origin },
        }
    }

    /// Convenience constructor for an edge arrival. Endpoints are put into
    /// canonical `u < v` order.
    pub fn edge(time: Time, a: NodeId, b: NodeId) -> Self {
        let (u, v) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        Event {
            time,
            kind: EventKind::AddEdge { u, v },
        }
    }

    /// True if this is an edge-creation event.
    pub fn is_edge(&self) -> bool {
        matches!(self.kind, EventKind::AddEdge { .. })
    }

    /// True if this is a node-creation event.
    pub fn is_node(&self) -> bool {
        matches!(self.kind, EventKind::AddNode { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_canonicalised() {
        let e = Event::edge(Time(1), NodeId(9), NodeId(3));
        match e.kind {
            EventKind::AddEdge { u, v } => {
                assert_eq!(u, NodeId(3));
                assert_eq!(v, NodeId(9));
            }
            _ => panic!("expected edge"),
        }
    }

    #[test]
    fn kind_predicates() {
        let n = Event::node(Time(0), NodeId(0), Origin::Core);
        let e = Event::edge(Time(0), NodeId(0), NodeId(1));
        assert!(n.is_node() && !n.is_edge());
        assert!(e.is_edge() && !e.is_node());
    }

    #[test]
    fn origin_labels() {
        assert_eq!(Origin::Core.label(), "core");
        assert_eq!(Origin::Competitor.to_string(), "competitor");
        assert_eq!(Origin::PostMerge.label(), "postmerge");
    }
}
