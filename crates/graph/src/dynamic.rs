//! Mutable, replayable adjacency structure.
//!
//! A [`DynamicGraph`] is the in-memory state of the network at a moment in
//! trace time. It is built by applying events in order (normally via
//! [`Replayer`](crate::snapshots::Replayer)) and can be frozen into a
//! [`crate::csr::CsrGraph`] whenever a read-optimised snapshot is
//! needed.
//!
//! Neighbour lists are kept sorted so that membership checks are
//! `O(log deg)` and CSR freezing is a straight copy.

use crate::csr::CsrGraph;
use crate::event::{Event, EventKind, Origin};
use crate::time::{NodeId, Time};

/// Mutable dynamic graph with per-node metadata.
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    adj: Vec<Vec<u32>>,
    origins: Vec<Origin>,
    join_times: Vec<Time>,
    num_edges: u64,
    now: Time,
}

impl DynamicGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty graph with a node-capacity hint.
    pub fn with_capacity(nodes: usize) -> Self {
        DynamicGraph {
            adj: Vec::with_capacity(nodes),
            origins: Vec::with_capacity(nodes),
            join_times: Vec::with_capacity(nodes),
            num_edges: 0,
            now: Time::ZERO,
        }
    }

    /// Number of nodes currently in the graph.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges currently in the graph.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Timestamp of the most recently applied event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Degree of a node (0 for ids not yet added).
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj.get(node.index()).map_or(0, |v| v.len())
    }

    /// Sorted neighbour list of a node.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        &self.adj[node.index()]
    }

    /// Origin network of a node.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn origin(&self, node: NodeId) -> Origin {
        self.origins[node.index()]
    }

    /// Join time of a node.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn join_time(&self, node: NodeId) -> Time {
        self.join_times[node.index()]
    }

    /// True if the undirected edge `a-b` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        match self.adj.get(a.index()) {
            Some(list) => list.binary_search(&b.0).is_ok(),
            None => false,
        }
    }

    /// Apply one event.
    ///
    /// Events are assumed to come from a validated
    /// [`EventLog`](crate::log::EventLog), so malformed input (unknown
    /// nodes, duplicates) is a logic error and triggers a panic in debug
    /// builds; in release builds duplicates would silently corrupt the
    /// edge count, hence the `debug_assert`s.
    pub fn apply(&mut self, event: &Event) {
        self.now = event.time;
        match event.kind {
            EventKind::AddNode { node, origin } => {
                debug_assert_eq!(node.index(), self.adj.len(), "node ids must be dense");
                self.adj.push(Vec::new());
                self.origins.push(origin);
                self.join_times.push(event.time);
            }
            EventKind::AddEdge { u, v } => {
                debug_assert!(u.index() < self.adj.len() && v.index() < self.adj.len());
                let pos = self.adj[u.index()]
                    .binary_search(&v.0)
                    .expect_err("duplicate edge in validated log");
                self.adj[u.index()].insert(pos, v.0);
                let pos = self.adj[v.index()]
                    .binary_search(&u.0)
                    .expect_err("duplicate edge in validated log");
                self.adj[v.index()].insert(pos, u.0);
                self.num_edges += 1;
            }
        }
    }

    /// Freeze the current state into a read-optimised CSR snapshot.
    pub fn freeze(&self) -> CsrGraph {
        CsrGraph::from_sorted_adjacency(&self.adj, self.now)
    }

    /// Average degree `2E / N` (0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::EventLogBuilder;

    fn sample_log() -> crate::log::EventLog {
        let mut b = EventLogBuilder::new();
        let n0 = b.add_node(Time(0), Origin::Core).unwrap();
        let n1 = b.add_node(Time(1), Origin::Core).unwrap();
        let n2 = b.add_node(Time(2), Origin::Competitor).unwrap();
        b.add_edge(Time(3), n0, n1).unwrap();
        b.add_edge(Time(4), n2, n0).unwrap();
        b.build()
    }

    #[test]
    fn replays_events() {
        let log = sample_log();
        let mut g = DynamicGraph::new();
        for e in log.events() {
            g.apply(e);
        }
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(1)), 1);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
        assert_eq!(g.now(), Time(4));
        assert_eq!(g.origin(NodeId(2)), Origin::Competitor);
        assert_eq!(g.join_time(NodeId(1)), Time(1));
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = EventLogBuilder::new();
        let n0 = b.add_node(Time(0), Origin::Core).unwrap();
        for _ in 1..6 {
            b.add_node(Time(0), Origin::Core).unwrap();
        }
        // insert in scrambled order
        for other in [4u32, 1, 5, 2, 3] {
            b.add_edge(Time(1), n0, NodeId(other)).unwrap();
        }
        let log = b.build();
        let mut g = DynamicGraph::new();
        for e in log.events() {
            g.apply(e);
        }
        assert_eq!(g.neighbors(n0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn average_degree() {
        let log = sample_log();
        let mut g = DynamicGraph::new();
        for e in log.events() {
            g.apply(e);
        }
        assert!((g.average_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(DynamicGraph::new().average_degree(), 0.0);
    }
}
