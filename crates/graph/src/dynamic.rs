//! Mutable, replayable adjacency structure.
//!
//! A [`DynamicGraph`] is the in-memory state of the network at a moment in
//! trace time. It is built by applying events in order (normally via
//! [`Replayer`](crate::snapshots::Replayer)) and can be frozen into a
//! [`crate::csr::CsrGraph`] whenever a read-optimised snapshot is
//! needed.
//!
//! Neighbour lists are kept sorted so that membership checks are
//! `O(log deg)` and CSR freezing is a straight copy.

use crate::csr::CsrGraph;
use crate::event::{Event, EventKind, Origin};
use crate::time::{NodeId, Time};
use std::fmt;

/// A malformed event reaching [`DynamicGraph::apply`].
///
/// Events normally come from a validated [`EventLog`](crate::log::EventLog)
/// whose builder enforces these invariants, so in correct pipelines none of
/// these variants is reachable. They are checked in **all** build profiles:
/// an unchecked duplicate edge or unknown endpoint would silently corrupt
/// the edge count and adjacency lists in release builds, which is exactly
/// the class of bug that must fail loudly instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// A node arrival whose id is not the next dense id.
    NonDenseNode {
        /// The id the event carried.
        node: NodeId,
        /// The id the graph expected next.
        expected: u32,
    },
    /// An edge endpoint that has not been added yet.
    UnknownEndpoint {
        /// The unknown endpoint.
        node: NodeId,
        /// Number of nodes currently in the graph.
        num_nodes: usize,
    },
    /// An edge whose endpoints are the same node.
    SelfLoop {
        /// The repeated endpoint.
        node: NodeId,
    },
    /// An edge that already exists.
    DuplicateEdge {
        /// Canonical smaller endpoint.
        u: NodeId,
        /// Canonical larger endpoint.
        v: NodeId,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::NonDenseNode { node, expected } => {
                write!(f, "node id {} is not dense (expected {expected})", node.0)
            }
            ApplyError::UnknownEndpoint { node, num_nodes } => write!(
                f,
                "edge endpoint {} is unknown (graph has {num_nodes} nodes)",
                node.0
            ),
            ApplyError::SelfLoop { node } => write!(f, "self-loop on node {}", node.0),
            ApplyError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge {}-{}", u.0, v.0)
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// Hook invoked by [`DynamicGraph::apply_with`] for every accepted event,
/// **after validation but before the mutation** — so `edge_added` can
/// inspect the pre-insert neighbourhoods of both endpoints (the state an
/// incremental triangle/wedge counter needs).
///
/// All methods default to no-ops; implement only what you track. A
/// rejected event never reaches the observer.
pub trait DeltaObserver {
    /// A node arrival was validated and is about to be added. `graph` is
    /// the state *before* the node exists.
    fn node_added(&mut self, graph: &DynamicGraph, node: NodeId, origin: Origin, time: Time) {
        let _ = (graph, node, origin, time);
    }

    /// An edge arrival was validated and is about to be inserted. `graph`
    /// is the state *before* the edge exists — `graph.degree(u)` and
    /// `graph.neighbors(u)` are the pre-insert values.
    fn edge_added(&mut self, graph: &DynamicGraph, u: NodeId, v: NodeId) {
        let _ = (graph, u, v);
    }
}

/// The no-op observer [`DynamicGraph::apply`] uses; compiles away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDelta;

impl DeltaObserver for NoDelta {}

/// Mutable dynamic graph with per-node metadata.
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    adj: Vec<Vec<u32>>,
    origins: Vec<Origin>,
    join_times: Vec<Time>,
    num_edges: u64,
    now: Time,
}

impl DynamicGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty graph with a node-capacity hint.
    pub fn with_capacity(nodes: usize) -> Self {
        DynamicGraph {
            adj: Vec::with_capacity(nodes),
            origins: Vec::with_capacity(nodes),
            join_times: Vec::with_capacity(nodes),
            num_edges: 0,
            now: Time::ZERO,
        }
    }

    /// Number of nodes currently in the graph.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges currently in the graph.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Timestamp of the most recently applied event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Degree of a node (0 for ids not yet added).
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj.get(node.index()).map_or(0, |v| v.len())
    }

    /// Sorted neighbour list of a node.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        &self.adj[node.index()]
    }

    /// Origin network of a node.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn origin(&self, node: NodeId) -> Origin {
        self.origins[node.index()]
    }

    /// Join time of a node.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn join_time(&self, node: NodeId) -> Time {
        self.join_times[node.index()]
    }

    /// True if the undirected edge `a-b` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        match self.adj.get(a.index()) {
            Some(list) => list.binary_search(&b.0).is_ok(),
            None => false,
        }
    }

    /// Apply one event.
    ///
    /// Malformed input (non-dense node ids, unknown endpoints, self-loops,
    /// duplicate edges) is rejected with a typed [`ApplyError`] in every
    /// build profile — these checks used to be `debug_assert`s, which let
    /// release builds silently corrupt the edge count and adjacency lists.
    /// On error the graph is left exactly as it was (no partial insert).
    pub fn apply(&mut self, event: &Event) -> Result<(), ApplyError> {
        self.apply_with(event, &mut NoDelta)
    }

    /// Apply one event, notifying `obs` after validation and before the
    /// mutation (see [`DeltaObserver`] for the exact contract). A rejected
    /// event leaves both the graph and the observer untouched.
    pub fn apply_with<O: DeltaObserver>(
        &mut self,
        event: &Event,
        obs: &mut O,
    ) -> Result<(), ApplyError> {
        match event.kind {
            EventKind::AddNode { node, origin } => {
                if node.index() != self.adj.len() {
                    return Err(ApplyError::NonDenseNode {
                        node,
                        expected: self.adj.len() as u32,
                    });
                }
                obs.node_added(self, node, origin, event.time);
                self.adj.push(Vec::new());
                self.origins.push(origin);
                self.join_times.push(event.time);
            }
            EventKind::AddEdge { u, v } => {
                // Validate everything before touching either list so a
                // rejected event never leaves a half-inserted edge behind.
                for node in [u, v] {
                    if node.index() >= self.adj.len() {
                        return Err(ApplyError::UnknownEndpoint {
                            node,
                            num_nodes: self.adj.len(),
                        });
                    }
                }
                if u == v {
                    return Err(ApplyError::SelfLoop { node: u });
                }
                let pos_u = match self.adj[u.index()].binary_search(&v.0) {
                    Err(pos) => pos,
                    Ok(_) => return Err(ApplyError::DuplicateEdge { u, v }),
                };
                obs.edge_added(self, u, v);
                self.adj[u.index()].insert(pos_u, v.0);
                let pos_v = self.adj[v.index()]
                    .binary_search(&u.0)
                    .expect_err("u-side insert implies v-side absence");
                self.adj[v.index()].insert(pos_v, u.0);
                self.num_edges += 1;
            }
        }
        self.now = event.time;
        Ok(())
    }

    /// Freeze the current state into a read-optimised CSR snapshot.
    pub fn freeze(&self) -> CsrGraph {
        CsrGraph::from_sorted_adjacency(&self.adj, self.now)
    }

    /// Average degree `2E / N` (0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::EventLogBuilder;

    fn sample_log() -> crate::log::EventLog {
        let mut b = EventLogBuilder::new();
        let n0 = b.add_node(Time(0), Origin::Core).unwrap();
        let n1 = b.add_node(Time(1), Origin::Core).unwrap();
        let n2 = b.add_node(Time(2), Origin::Competitor).unwrap();
        b.add_edge(Time(3), n0, n1).unwrap();
        b.add_edge(Time(4), n2, n0).unwrap();
        b.build()
    }

    #[test]
    fn replays_events() {
        let log = sample_log();
        let mut g = DynamicGraph::new();
        for e in log.events() {
            g.apply(e).unwrap();
        }
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(1)), 1);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
        assert_eq!(g.now(), Time(4));
        assert_eq!(g.origin(NodeId(2)), Origin::Competitor);
        assert_eq!(g.join_time(NodeId(1)), Time(1));
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = EventLogBuilder::new();
        let n0 = b.add_node(Time(0), Origin::Core).unwrap();
        for _ in 1..6 {
            b.add_node(Time(0), Origin::Core).unwrap();
        }
        // insert in scrambled order
        for other in [4u32, 1, 5, 2, 3] {
            b.add_edge(Time(1), n0, NodeId(other)).unwrap();
        }
        let log = b.build();
        let mut g = DynamicGraph::new();
        for e in log.events() {
            g.apply(e).unwrap();
        }
        assert_eq!(g.neighbors(n0), &[1, 2, 3, 4, 5]);
    }

    /// The release-build silent-corruption hazard: duplicate and unknown
    /// events must be rejected with typed errors in *every* profile, and
    /// a rejected event must leave the graph untouched.
    #[test]
    fn malformed_events_rejected_in_all_profiles() {
        let mut g = DynamicGraph::new();
        g.apply(&Event::node(Time(0), NodeId(0), Origin::Core))
            .unwrap();
        g.apply(&Event::node(Time(1), NodeId(1), Origin::Core))
            .unwrap();
        g.apply(&Event::edge(Time(2), NodeId(0), NodeId(1)))
            .unwrap();

        // Non-dense node id.
        assert_eq!(
            g.apply(&Event::node(Time(3), NodeId(5), Origin::Core)),
            Err(ApplyError::NonDenseNode {
                node: NodeId(5),
                expected: 2
            })
        );
        // Unknown endpoint.
        assert_eq!(
            g.apply(&Event::edge(Time(3), NodeId(0), NodeId(9))),
            Err(ApplyError::UnknownEndpoint {
                node: NodeId(9),
                num_nodes: 2
            })
        );
        // Self-loop.
        assert_eq!(
            g.apply(&Event {
                time: Time(3),
                kind: EventKind::AddEdge {
                    u: NodeId(1),
                    v: NodeId(1)
                }
            }),
            Err(ApplyError::SelfLoop { node: NodeId(1) })
        );
        // Duplicate edge (the original hazard).
        assert_eq!(
            g.apply(&Event::edge(Time(3), NodeId(1), NodeId(0))),
            Err(ApplyError::DuplicateEdge {
                u: NodeId(0),
                v: NodeId(1)
            })
        );
        // Nothing was corrupted by the rejected events.
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(NodeId(0)), &[1]);
        assert_eq!(g.neighbors(NodeId(1)), &[0]);
        assert_eq!(g.now(), Time(2), "rejected events must not advance time");
        let shown = ApplyError::DuplicateEdge {
            u: NodeId(0),
            v: NodeId(1),
        }
        .to_string();
        assert!(shown.contains("duplicate edge 0-1"), "{shown}");
    }

    /// The observer sees every accepted event with pre-insert state, and
    /// never sees a rejected one.
    #[test]
    fn delta_observer_sees_pre_insert_state() {
        #[derive(Default)]
        struct Probe {
            nodes: usize,
            edges: Vec<(u32, u32, usize, usize)>, // (u, v, pre-deg u, pre-deg v)
        }
        impl DeltaObserver for Probe {
            fn node_added(&mut self, g: &DynamicGraph, node: NodeId, _: Origin, _: Time) {
                assert_eq!(node.index(), g.num_nodes(), "called before the push");
                self.nodes += 1;
            }
            fn edge_added(&mut self, g: &DynamicGraph, u: NodeId, v: NodeId) {
                assert!(!g.has_edge(u, v), "called before the insert");
                self.edges.push((u.0, v.0, g.degree(u), g.degree(v)));
            }
        }
        let log = sample_log();
        let mut g = DynamicGraph::new();
        let mut probe = Probe::default();
        for e in log.events() {
            g.apply_with(e, &mut probe).unwrap();
        }
        assert_eq!(probe.nodes, 3);
        // The log builder canonicalises endpoints as (min, max).
        assert_eq!(probe.edges, vec![(0, 1, 0, 0), (0, 2, 1, 0)]);
        // Rejected events leave the observe count unchanged.
        let before = probe.edges.len();
        assert!(g
            .apply_with(&Event::edge(Time(9), NodeId(0), NodeId(1)), &mut probe)
            .is_err());
        assert_eq!(probe.edges.len(), before);
    }

    #[test]
    fn average_degree() {
        let log = sample_log();
        let mut g = DynamicGraph::new();
        for e in log.events() {
            g.apply(e).unwrap();
        }
        assert!((g.average_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(DynamicGraph::new().average_degree(), 0.0);
    }
}
