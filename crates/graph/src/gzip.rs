//! Minimal std-only gzip (RFC 1952) over DEFLATE (RFC 1951).
//!
//! The serve plane pre-compresses immutable per-day CSV bodies once and
//! serves the bytes verbatim on `Accept-Encoding: gzip`, so the encoder
//! optimises for simplicity and determinism, not ratio: greedy LZ77 over
//! a hash-chain with **fixed-Huffman** blocks only. The decoder accepts
//! exactly what the encoder emits (stored + fixed-Huffman blocks) — it
//! exists so parity drills can prove a gzip response decompresses to the
//! byte-identical CSV, and it deliberately rejects dynamic-Huffman
//! streams rather than half-supporting them.
//!
//! The CRC-32 in the gzip trailer is the same reflected-polynomial CRC
//! the v2 trace format already uses ([`crate::crc32`]).

use crate::crc32::crc32;

/// Why a gzip stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GzipError {
    /// Not a gzip stream (bad magic / method / reserved flags).
    BadHeader,
    /// The deflate payload is malformed or truncated.
    BadDeflate(&'static str),
    /// A valid-looking stream using a feature this decoder does not
    /// support (dynamic Huffman blocks, header extras).
    Unsupported(&'static str),
    /// Trailer CRC or length disagrees with the decompressed bytes.
    TrailerMismatch,
}

impl std::fmt::Display for GzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GzipError::BadHeader => write!(f, "not a gzip stream"),
            GzipError::BadDeflate(what) => write!(f, "malformed deflate stream: {what}"),
            GzipError::Unsupported(what) => write!(f, "unsupported gzip feature: {what}"),
            GzipError::TrailerMismatch => write!(f, "gzip trailer mismatch (corrupt stream)"),
        }
    }
}

impl std::error::Error for GzipError {}

// ---------------------------------------------------------------------------
// Bit-level plumbing. DEFLATE packs bits LSB-first within bytes; Huffman
// codes are emitted most-significant code bit first, so they are
// bit-reversed before hitting the writer.
// ---------------------------------------------------------------------------

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    bits: u32,
}

impl BitWriter {
    fn new(out: Vec<u8>) -> BitWriter {
        BitWriter {
            out,
            acc: 0,
            bits: 0,
        }
    }

    /// Append the low `n` bits of `v`, LSB-first.
    fn put(&mut self, v: u32, n: u32) {
        self.acc |= u64::from(v) << self.bits;
        self.bits += n;
        while self.bits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.bits -= 8;
        }
    }

    /// Append a Huffman code of `n` bits (given MSB-first, as the spec
    /// tables write them).
    fn put_code(&mut self, code: u32, n: u32) {
        let mut rev = 0u32;
        for i in 0..n {
            rev |= ((code >> i) & 1) << (n - 1 - i);
        }
        self.put(rev, n);
    }

    /// Flush the partial byte (zero-padded) and return the buffer.
    fn finish(mut self) -> Vec<u8> {
        if self.bits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    bits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            bits: 0,
        }
    }

    fn take(&mut self, n: u32) -> Result<u32, GzipError> {
        while self.bits < n {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or(GzipError::BadDeflate("unexpected end of stream"))?;
            self.acc |= u64::from(byte) << self.bits;
            self.bits += 8;
            self.pos += 1;
        }
        let v = (self.acc & ((1u64 << n) - 1)) as u32;
        self.acc >>= n;
        self.bits -= n;
        Ok(v)
    }

    /// Discard bits up to the next byte boundary (stored-block headers).
    fn align(&mut self) {
        let drop = self.bits % 8;
        self.acc >>= drop;
        self.bits -= drop;
    }
}

// ---------------------------------------------------------------------------
// Fixed-Huffman tables (RFC 1951 §3.2.5/§3.2.6).
// ---------------------------------------------------------------------------

/// Length symbol for a match length 3..=258: `(symbol, extra_bits, base)`.
const LENGTH_TABLE: [(u32, u32, u32); 29] = [
    (257, 0, 3),
    (258, 0, 4),
    (259, 0, 5),
    (260, 0, 6),
    (261, 0, 7),
    (262, 0, 8),
    (263, 0, 9),
    (264, 0, 10),
    (265, 1, 11),
    (266, 1, 13),
    (267, 1, 15),
    (268, 1, 17),
    (269, 2, 19),
    (270, 2, 23),
    (271, 2, 27),
    (272, 2, 31),
    (273, 3, 35),
    (274, 3, 43),
    (275, 3, 51),
    (276, 3, 59),
    (277, 4, 67),
    (278, 4, 83),
    (279, 4, 99),
    (280, 4, 115),
    (281, 5, 131),
    (282, 5, 163),
    (283, 5, 195),
    (284, 5, 227),
    (285, 0, 258),
];

/// Distance symbol for 1..=32768: `(symbol, extra_bits, base)`.
const DIST_TABLE: [(u32, u32, u32); 30] = [
    (0, 0, 1),
    (1, 0, 2),
    (2, 0, 3),
    (3, 0, 4),
    (4, 1, 5),
    (5, 1, 7),
    (6, 2, 9),
    (7, 2, 13),
    (8, 3, 17),
    (9, 3, 25),
    (10, 4, 33),
    (11, 4, 49),
    (12, 5, 65),
    (13, 5, 97),
    (14, 6, 129),
    (15, 6, 193),
    (16, 7, 257),
    (17, 7, 385),
    (18, 8, 513),
    (19, 8, 769),
    (20, 9, 1025),
    (21, 9, 1537),
    (22, 10, 2049),
    (23, 10, 3073),
    (24, 11, 4097),
    (25, 11, 6145),
    (26, 12, 8193),
    (27, 12, 12289),
    (28, 13, 16385),
    (29, 13, 24577),
];

fn put_litlen(w: &mut BitWriter, sym: u32) {
    match sym {
        0..=143 => w.put_code(0x30 + sym, 8),
        144..=255 => w.put_code(0x190 + sym - 144, 9),
        256..=279 => w.put_code(sym - 256, 7),
        _ => w.put_code(0xC0 + sym - 280, 8),
    }
}

fn put_length(w: &mut BitWriter, len: u32) {
    debug_assert!((3..=258).contains(&len));
    // Last entry whose base fits; 258 maps to the extra-free code 285.
    let &(sym, extra, base) = LENGTH_TABLE
        .iter()
        .rev()
        .find(|&&(_, _, base)| base <= len)
        .expect("length in range");
    put_litlen(w, sym);
    if extra > 0 {
        w.put(len - base, extra);
    }
}

fn put_distance(w: &mut BitWriter, dist: u32) {
    debug_assert!((1..=32768).contains(&dist));
    let &(sym, extra, base) = DIST_TABLE
        .iter()
        .rev()
        .find(|&&(_, _, base)| base <= dist)
        .expect("distance in range");
    w.put_code(sym, 5);
    if extra > 0 {
        w.put(dist - base, extra);
    }
}

// ---------------------------------------------------------------------------
// Greedy LZ77 over a hash chain.
// ---------------------------------------------------------------------------

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: u32 = 15;
/// Longest hash chain walked per position; ratio/speed knob.
const MAX_CHAIN: usize = 64;

fn hash3(data: &[u8], i: usize) -> usize {
    let v = (u32::from(data[i]) << 16) | (u32::from(data[i + 1]) << 8) | u32::from(data[i + 2]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Deflate `data` as one final fixed-Huffman block.
fn deflate_fixed(data: &[u8], w: &mut BitWriter) {
    // BFINAL=1, BTYPE=01 (fixed Huffman).
    w.put(1, 1);
    w.put(1, 2);

    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut prev = vec![u32::MAX; data.len()];
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let mut cand = head[hash3(data, i)];
            let mut chain = 0;
            while cand != u32::MAX && chain < MAX_CHAIN {
                let c = cand as usize;
                if i - c > WINDOW {
                    break;
                }
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[c + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - c;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[c];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            put_length(w, best_len as u32);
            put_distance(w, best_dist as u32);
            // Register every covered position so later matches can
            // reach back into this run.
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            for (j, slot) in prev.iter_mut().enumerate().take(end).skip(i) {
                let h = hash3(data, j);
                *slot = head[h];
                head[h] = j as u32;
            }
            i += best_len;
        } else {
            put_litlen(w, u32::from(data[i]));
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                prev[i] = head[h];
                head[h] = i as u32;
            }
            i += 1;
        }
    }
    put_litlen(w, 256); // end of block
}

/// Compress `data` into a complete gzip member (header + fixed-Huffman
/// deflate + CRC-32/length trailer). Deterministic: the same input
/// always yields the same bytes, so cached variants are stable.
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    // Header: magic, deflate, no flags, zero mtime, no XFL hints,
    // "unknown" OS — nothing environment-dependent.
    out.extend_from_slice(&[0x1F, 0x8B, 0x08, 0, 0, 0, 0, 0, 0, 0xFF]);
    let mut w = BitWriter::new(out);
    deflate_fixed(data, &mut w);
    let mut out = w.finish();
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decode one fixed-Huffman literal/length symbol (canonical tree,
/// MSB-first code accumulation).
fn read_litlen(r: &mut BitReader) -> Result<u32, GzipError> {
    let mut code = 0u32;
    for _ in 0..7 {
        code = (code << 1) | r.take(1)?;
    }
    if code <= 0x17 {
        return Ok(256 + code);
    }
    code = (code << 1) | r.take(1)?;
    if (0x30..=0xBF).contains(&code) {
        return Ok(code - 0x30);
    }
    if (0xC0..=0xC7).contains(&code) {
        return Ok(280 + code - 0xC0);
    }
    code = (code << 1) | r.take(1)?;
    if (0x190..=0x1FF).contains(&code) {
        return Ok(144 + code - 0x190);
    }
    Err(GzipError::BadDeflate("invalid fixed litlen code"))
}

fn inflate(r: &mut BitReader, out: &mut Vec<u8>) -> Result<(), GzipError> {
    loop {
        let bfinal = r.take(1)?;
        match r.take(2)? {
            0 => {
                r.align();
                let len = r.take(16)?;
                let nlen = r.take(16)?;
                if len != (!nlen & 0xFFFF) {
                    return Err(GzipError::BadDeflate("stored block LEN/NLEN mismatch"));
                }
                for _ in 0..len {
                    out.push(r.take(8)? as u8);
                }
            }
            1 => loop {
                let sym = read_litlen(r)?;
                match sym {
                    0..=255 => out.push(sym as u8),
                    256 => break,
                    257..=285 => {
                        let &(_, extra, base) = &LENGTH_TABLE[(sym - 257) as usize];
                        let len = (base + if extra > 0 { r.take(extra)? } else { 0 }) as usize;
                        let mut dcode = 0u32;
                        for _ in 0..5 {
                            dcode = (dcode << 1) | r.take(1)?;
                        }
                        if dcode >= 30 {
                            return Err(GzipError::BadDeflate("invalid distance code"));
                        }
                        let &(_, dextra, dbase) = &DIST_TABLE[dcode as usize];
                        let dist = (dbase + if dextra > 0 { r.take(dextra)? } else { 0 }) as usize;
                        if dist == 0 || dist > out.len() {
                            return Err(GzipError::BadDeflate("distance before stream start"));
                        }
                        let start = out.len() - dist;
                        // Byte-at-a-time: RLE-style overlapping copies
                        // (dist < len) are valid deflate.
                        for j in 0..len {
                            let b = out[start + j];
                            out.push(b);
                        }
                    }
                    _ => return Err(GzipError::BadDeflate("invalid litlen symbol")),
                }
            },
            2 => return Err(GzipError::Unsupported("dynamic Huffman block")),
            _ => return Err(GzipError::BadDeflate("reserved block type")),
        }
        if bfinal == 1 {
            return Ok(());
        }
    }
}

/// Decompress one gzip member produced by [`gzip_compress`] (stored and
/// fixed-Huffman deflate blocks), verifying the CRC-32/length trailer.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, GzipError> {
    if data.len() < 18 || data[0] != 0x1F || data[1] != 0x8B {
        return Err(GzipError::BadHeader);
    }
    if data[2] != 0x08 {
        return Err(GzipError::BadHeader);
    }
    if data[3] != 0 {
        // FTEXT/FHCRC/FEXTRA/FNAME/FCOMMENT — we never emit them.
        return Err(GzipError::Unsupported("gzip header flags"));
    }
    let deflate = &data[10..data.len() - 8];
    let mut out = Vec::with_capacity(data.len() * 3);
    let mut r = BitReader::new(deflate);
    inflate(&mut r, &mut out)?;
    let trailer = &data[data.len() - 8..];
    let want_crc = u32::from_le_bytes(trailer[0..4].try_into().unwrap());
    let want_len = u32::from_le_bytes(trailer[4..8].try_into().unwrap());
    if crc32(&out) != want_crc || out.len() as u32 != want_len {
        return Err(GzipError::TrailerMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let z = gzip_compress(data);
        let back = gzip_decompress(&z).expect("decompress");
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrips_representative_payloads() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"day,nodes,edges\n120,54000,770000\n");
        roundtrip(&vec![0u8; 100_000]);
        roundtrip(&(0..=255u8).cycle().take(70_000).collect::<Vec<_>>());
        // CSV-shaped: repetitive rows, the serve plane's actual payload.
        let csv: String = (0..500)
            .map(|i| format!("{i},0.123456,0.654321,42,17\n"))
            .collect();
        roundtrip(csv.as_bytes());
    }

    #[test]
    fn compresses_repetitive_text() {
        let csv: Vec<u8> = std::iter::repeat_n(&b"7,0.25,0.5,1000,3\n"[..], 200)
            .flatten()
            .copied()
            .collect();
        let z = gzip_compress(&csv);
        assert!(
            z.len() < csv.len() / 4,
            "repetitive CSV should shrink well: {} -> {}",
            csv.len(),
            z.len()
        );
    }

    #[test]
    fn output_is_deterministic() {
        let data = b"determinism matters for cached variants";
        assert_eq!(gzip_compress(data), gzip_compress(data));
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(
            gzip_decompress(b"not gzip").unwrap_err(),
            GzipError::BadHeader
        );
        let mut z = gzip_compress(b"hello world, hello world, hello world");
        z.truncate(z.len() - 3);
        assert!(gzip_decompress(&z).is_err());
        let mut z = gzip_compress(b"flip a payload bit and the trailer must catch it");
        let mid = z.len() / 2;
        z[mid] ^= 0x10;
        assert!(gzip_decompress(&z).is_err());
    }

    #[test]
    fn overlapping_copy_is_rle() {
        // dist=1 len>1 is the classic RLE encoding; the matcher finds it
        // on runs and the decoder must copy byte-at-a-time.
        roundtrip(&[b'x'; 1000]);
    }
}
