//! Replaying an event log into per-day snapshots.
//!
//! The paper materialises 771 daily static snapshots from the Renren event
//! stream. [`Replayer`] walks an [`EventLog`] forward, maintaining a
//! [`DynamicGraph`]; [`DailySnapshots`] wraps it into an iterator that
//! yields a frozen [`CsrGraph`] every `stride` days, which is how the
//! Figure 1 and Figure 4 pipelines consume the trace.

use crate::csr::CsrGraph;
use crate::dynamic::DynamicGraph;
use crate::log::EventLog;
use crate::time::{Day, Time};
use std::fmt;

/// Errors raised while decoding or applying a [`ReplayCheckpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint text did not parse.
    Malformed(String),
    /// The checkpoint was taken from a different trace.
    FingerprintMismatch {
        /// Fingerprint recorded in the checkpoint.
        recorded: u64,
        /// Fingerprint of the log being resumed.
        actual: u64,
    },
    /// The checkpoint position exceeds the log length.
    OutOfRange {
        /// Recorded event position.
        pos: usize,
        /// Number of events in the log.
        len: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed(r) => write!(f, "malformed checkpoint: {r}"),
            CheckpointError::FingerprintMismatch { recorded, actual } => write!(
                f,
                "checkpoint was taken from a different trace \
                 (recorded fingerprint {recorded:016x}, trace has {actual:016x})"
            ),
            CheckpointError::OutOfRange { pos, len } => {
                write!(f, "checkpoint position {pos} exceeds log length {len}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A serialisable point in a replay: how many events have been applied,
/// which day was last completed, and a fingerprint of the trace so a
/// checkpoint is never applied to the wrong log.
///
/// The text encoding is a tiny line-based format (see [`Self::to_text`])
/// written atomically by the CLI's `--checkpoint` support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayCheckpoint {
    /// Index of the next unapplied event.
    pub pos: usize,
    /// Last fully-processed day.
    pub day: Day,
    /// [`EventLog::fingerprint`] of the trace this was taken from.
    pub fingerprint: u64,
}

impl ReplayCheckpoint {
    /// Encode as the stable text format:
    ///
    /// ```text
    /// #%osn-checkpoint v1
    /// pos <events applied>
    /// day <last completed day>
    /// fingerprint <16 hex digits>
    /// ```
    pub fn to_text(&self) -> String {
        format!(
            "#%osn-checkpoint v1\npos {}\nday {}\nfingerprint {:016x}\n",
            self.pos, self.day, self.fingerprint
        )
    }

    /// Decode the text format produced by [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default().trim();
        if header != "#%osn-checkpoint v1" {
            return Err(CheckpointError::Malformed(format!("bad header '{header}'")));
        }
        let mut pos = None;
        let mut day = None;
        let mut fingerprint = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| CheckpointError::Malformed(format!("bad line '{line}'")))?;
            match key {
                "pos" => {
                    pos =
                        Some(value.parse().map_err(|_| {
                            CheckpointError::Malformed(format!("bad pos '{value}'"))
                        })?)
                }
                "day" => {
                    day =
                        Some(value.parse().map_err(|_| {
                            CheckpointError::Malformed(format!("bad day '{value}'"))
                        })?)
                }
                "fingerprint" => {
                    fingerprint = Some(u64::from_str_radix(value, 16).map_err(|_| {
                        CheckpointError::Malformed(format!("bad fingerprint '{value}'"))
                    })?)
                }
                other => return Err(CheckpointError::Malformed(format!("unknown key '{other}'"))),
            }
        }
        match (pos, day, fingerprint) {
            (Some(pos), Some(day), Some(fingerprint)) => Ok(ReplayCheckpoint {
                pos,
                day,
                fingerprint,
            }),
            _ => Err(CheckpointError::Malformed(
                "missing pos, day or fingerprint".to_string(),
            )),
        }
    }
}

/// Cursor over an [`EventLog`] that keeps a [`DynamicGraph`] in sync.
#[derive(Debug)]
pub struct Replayer<'a> {
    log: &'a EventLog,
    graph: DynamicGraph,
    pos: usize,
}

impl<'a> Replayer<'a> {
    /// Start a replay at the beginning of the log.
    pub fn new(log: &'a EventLog) -> Self {
        Replayer {
            log,
            graph: DynamicGraph::with_capacity(log.num_nodes() as usize),
            pos: 0,
        }
    }

    /// The graph as of the last applied event.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Index of the next unapplied event.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True if every event has been applied.
    pub fn finished(&self) -> bool {
        self.pos >= self.log.events().len()
    }

    /// Apply all events with `time < t`. Returns how many were applied.
    pub fn advance_to(&mut self, t: Time) -> usize {
        self.advance_to_with(t, &mut crate::dynamic::NoDelta)
    }

    /// Apply all events with `time < t`, routing every accepted event
    /// through `obs` (see [`DeltaObserver`](crate::dynamic::DeltaObserver)).
    /// This is how the incremental engine keeps per-metric state in sync
    /// with the replay without a second pass. Returns how many events were
    /// applied.
    pub fn advance_to_with<O: crate::dynamic::DeltaObserver>(
        &mut self,
        t: Time,
        obs: &mut O,
    ) -> usize {
        let events = self.log.events();
        let start = self.pos;
        while self.pos < events.len() && events[self.pos].time < t {
            // The log was validated at construction, so a malformed event
            // here means the invariant chain is broken — fail loudly in
            // every build profile instead of corrupting the replay.
            if let Err(e) = self.graph.apply_with(&events[self.pos], obs) {
                panic!(
                    "validated EventLog produced a malformed event at position {}: {e}",
                    self.pos
                );
            }
            self.pos += 1;
        }
        // One batched add per advance call, not one per event: replay is
        // the hottest loop in the workspace.
        osn_obs::counter!("replay.events").add((self.pos - start) as u64);
        self.pos - start
    }

    /// Apply all events up to and including day `day` (i.e. everything
    /// before the start of `day + 1`). Returns how many were applied.
    pub fn advance_through_day(&mut self, day: Day) -> usize {
        self.advance_to(Time::day_end(day))
    }

    /// Observer-carrying variant of [`Self::advance_through_day`].
    pub fn advance_through_day_with<O: crate::dynamic::DeltaObserver>(
        &mut self,
        day: Day,
        obs: &mut O,
    ) -> usize {
        self.advance_to_with(Time::day_end(day), obs)
    }

    /// Apply the remaining events.
    pub fn advance_to_end(&mut self) -> usize {
        self.advance_to(Time(u64::MAX))
    }

    /// Freeze the current state.
    pub fn freeze(&self) -> CsrGraph {
        self.graph.freeze()
    }

    /// Capture the current position as a checkpoint, recording `day` as
    /// the last fully-processed day.
    pub fn checkpoint(&self, day: Day) -> ReplayCheckpoint {
        ReplayCheckpoint {
            pos: self.pos,
            day,
            fingerprint: self.log.fingerprint(),
        }
    }

    /// Reconstruct a replayer at a checkpointed position by re-applying
    /// the event prefix. Refuses checkpoints taken from a different trace
    /// or pointing past the end of the log.
    pub fn resume(log: &'a EventLog, cp: &ReplayCheckpoint) -> Result<Self, CheckpointError> {
        let actual = log.fingerprint();
        if cp.fingerprint != actual {
            return Err(CheckpointError::FingerprintMismatch {
                recorded: cp.fingerprint,
                actual,
            });
        }
        if cp.pos > log.events().len() {
            return Err(CheckpointError::OutOfRange {
                pos: cp.pos,
                len: log.events().len(),
            });
        }
        let mut r = Replayer::new(log);
        let events = log.events();
        while r.pos < cp.pos {
            if let Err(e) = r.graph.apply(&events[r.pos]) {
                panic!(
                    "validated EventLog produced a malformed event at position {}: {e}",
                    r.pos
                );
            }
            r.pos += 1;
        }
        Ok(r)
    }
}

/// A snapshot emitted by [`DailySnapshots`].
#[derive(Debug)]
pub struct Snapshot {
    /// The day this snapshot covers (state at end of that day).
    pub day: Day,
    /// Frozen graph state.
    pub graph: CsrGraph,
    /// Number of nodes at snapshot time.
    pub num_nodes: usize,
    /// Number of edges at snapshot time.
    pub num_edges: u64,
}

/// Iterator yielding a frozen snapshot every `stride` days.
///
/// The iterator is lazy: memory stays bounded by one `DynamicGraph` plus
/// the single `CsrGraph` being yielded (callers that fan snapshots out to
/// worker threads bound in-flight copies with a channel; see
/// `osn_metrics::parallel`).
#[derive(Debug)]
pub struct DailySnapshots<'a> {
    replayer: Replayer<'a>,
    next_day: Day,
    last_day: Day,
    stride: Day,
}

impl<'a> DailySnapshots<'a> {
    /// Snapshots of `log` at days `first_day, first_day + stride, …` up to
    /// and including the log's final day.
    ///
    /// # Panics
    /// Panics if `stride == 0`.
    pub fn new(log: &'a EventLog, first_day: Day, stride: Day) -> Self {
        assert!(stride > 0, "stride must be positive");
        DailySnapshots {
            replayer: Replayer::new(log),
            next_day: first_day,
            last_day: log.end_day(),
            stride,
        }
    }

    /// Snapshot every day from day 0.
    pub fn every_day(log: &'a EventLog) -> Self {
        Self::new(log, 0, 1)
    }
}

impl<'a> Iterator for DailySnapshots<'a> {
    type Item = Snapshot;

    fn next(&mut self) -> Option<Snapshot> {
        if self.next_day > self.last_day {
            return None;
        }
        let day = self.next_day;
        self.replayer.advance_through_day(day);
        self.next_day += self.stride;
        let graph = self.replayer.freeze();
        Some(Snapshot {
            day,
            num_nodes: self.replayer.graph().num_nodes(),
            num_edges: self.replayer.graph().num_edges(),
            graph,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Origin;
    use crate::log::EventLogBuilder;

    fn log_over_five_days() -> EventLog {
        let mut b = EventLogBuilder::new();
        let mut nodes = Vec::new();
        for d in 0..5u64 {
            let n = b.add_node(Time::from_days(d), Origin::Core).unwrap();
            nodes.push(n);
            if d > 0 {
                b.add_edge(
                    Time::from_days(d).plus_seconds(10),
                    nodes[(d - 1) as usize],
                    n,
                )
                .unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn advance_to_is_exclusive() {
        let log = log_over_five_days();
        let mut r = Replayer::new(&log);
        let applied = r.advance_to(Time::from_days(2));
        // day 0: node; day 1: node + edge — 3 events strictly before day 2.
        assert_eq!(applied, 3);
        assert_eq!(r.graph().num_nodes(), 2);
        assert_eq!(r.graph().num_edges(), 1);
    }

    #[test]
    fn advance_through_day_is_inclusive() {
        let log = log_over_five_days();
        let mut r = Replayer::new(&log);
        r.advance_through_day(2);
        assert_eq!(r.graph().num_nodes(), 3);
        assert_eq!(r.graph().num_edges(), 2);
        assert!(!r.finished());
        r.advance_to_end();
        assert!(r.finished());
        assert_eq!(r.graph().num_nodes(), 5);
    }

    #[test]
    fn daily_snapshots_cover_all_days() {
        let log = log_over_five_days();
        let snaps: Vec<_> = DailySnapshots::every_day(&log).collect();
        assert_eq!(snaps.len(), 5);
        assert_eq!(snaps[0].num_nodes, 1);
        assert_eq!(snaps[4].num_nodes, 5);
        assert_eq!(snaps[4].num_edges, 4);
        assert_eq!(snaps[2].day, 2);
    }

    #[test]
    fn strided_snapshots() {
        let log = log_over_five_days();
        let snaps: Vec<_> = DailySnapshots::new(&log, 1, 2).collect();
        let days: Vec<_> = snaps.iter().map(|s| s.day).collect();
        assert_eq!(days, vec![1, 3]);
        assert_eq!(snaps[1].num_nodes, 4);
    }

    #[test]
    fn snapshot_graph_matches_counts() {
        let log = log_over_five_days();
        for s in DailySnapshots::every_day(&log) {
            assert_eq!(s.graph.num_nodes(), s.num_nodes);
            assert_eq!(s.graph.num_edges(), s.num_edges);
        }
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let log = log_over_five_days();
        let _ = DailySnapshots::new(&log, 0, 0);
    }

    #[test]
    fn checkpoint_text_roundtrip() {
        let cp = ReplayCheckpoint {
            pos: 123,
            day: 45,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
        };
        let text = cp.to_text();
        assert_eq!(ReplayCheckpoint::from_text(&text).unwrap(), cp);
        assert!(ReplayCheckpoint::from_text("garbage").is_err());
        assert!(ReplayCheckpoint::from_text("#%osn-checkpoint v1\npos x\n").is_err());
        assert!(ReplayCheckpoint::from_text("#%osn-checkpoint v1\npos 1\n").is_err());
    }

    #[test]
    fn resume_matches_uninterrupted_replay() {
        let log = log_over_five_days();
        let mut full = Replayer::new(&log);
        full.advance_through_day(2);
        let cp = full.checkpoint(2);
        let resumed = Replayer::resume(&log, &cp).unwrap();
        assert_eq!(resumed.position(), full.position());
        assert_eq!(resumed.graph().num_nodes(), full.graph().num_nodes());
        assert_eq!(resumed.graph().num_edges(), full.graph().num_edges());
        // Continue both to the end; they must stay in lockstep.
        let mut resumed = resumed;
        full.advance_to_end();
        resumed.advance_to_end();
        assert_eq!(resumed.position(), full.position());
        assert_eq!(resumed.graph().num_edges(), full.graph().num_edges());
    }

    #[test]
    fn resume_rejects_wrong_trace() {
        let log = log_over_five_days();
        let mut other_b = EventLogBuilder::new();
        other_b.add_node(Time(0), Origin::Core).unwrap();
        let other = other_b.build();
        let mut r = Replayer::new(&log);
        r.advance_through_day(1);
        let cp = r.checkpoint(1);
        let err = Replayer::resume(&other, &cp).unwrap_err();
        assert!(matches!(err, CheckpointError::FingerprintMismatch { .. }));
    }

    #[test]
    fn resume_rejects_out_of_range() {
        let log = log_over_five_days();
        let cp = ReplayCheckpoint {
            pos: log.events().len() + 1,
            day: 9,
            fingerprint: log.fingerprint(),
        };
        assert!(matches!(
            Replayer::resume(&log, &cp),
            Err(CheckpointError::OutOfRange { .. })
        ));
    }
}
