//! Crash-safe file writes: tmp file + fsync + rename.
//!
//! Every artifact this workspace persists (traces, CSVs, checkpoints) goes
//! through [`write_atomic`], so a process killed mid-write never leaves a
//! half-written file where a later run expects a valid one. The protocol is
//! the classic POSIX one: write everything to `<path>.tmp` in the target
//! directory, `fsync` it, then `rename(2)` over the destination — rename
//! within a filesystem is atomic, so readers observe either the old
//! complete file or the new complete file, never a torn mix.
//!
//! Missing parent directories are created, so callers can point outputs at
//! paths that do not exist yet without hitting an opaque `ENOENT`.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// The temporary sibling `<path>.tmp` used during an atomic write.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replace `path` with whatever `write` produces.
///
/// Creates missing parent directories, streams through a buffered writer,
/// fsyncs, and renames. On any error the temporary file is removed and the
/// destination is left untouched.
pub fn write_atomic<F>(path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)?;
    }
    let tmp = tmp_path(path);
    let result = (|| {
        let mut w = BufWriter::new(File::create(&tmp)?);
        write(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        Ok(())
    })();
    if let Err(e) = result {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    fs::rename(&tmp, path)
}

/// Atomically replace `path` with `bytes`.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic(path, |w| w.write_all(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join("osn_atomicfile_tests").join(name)
    }

    #[test]
    fn writes_and_replaces() {
        let path = scratch("replace/out.txt");
        write_bytes_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_bytes_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!tmp_path(&path).exists(), "tmp file must not linger");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn creates_missing_parents() {
        let path = scratch("a/b/c/deep.txt");
        let _ = fs::remove_dir_all(scratch("a"));
        write_bytes_atomic(&path, b"x").unwrap();
        assert!(path.exists());
        fs::remove_dir_all(scratch("a")).unwrap();
    }

    #[test]
    fn failed_write_leaves_destination_intact() {
        let path = scratch("intact/out.txt");
        write_bytes_atomic(&path, b"good").unwrap();
        let err = write_atomic(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("simulated failure"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "simulated failure");
        assert_eq!(
            fs::read(&path).unwrap(),
            b"good",
            "old content must survive"
        );
        assert!(!tmp_path(&path).exists(), "tmp file must be cleaned up");
        fs::remove_file(&path).unwrap();
    }
}
