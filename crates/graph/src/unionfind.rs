//! Disjoint-set forest with union by size and path halving.
//!
//! Used for connected-component computations (`osn-metrics`) and as a
//! sanity check inside the trace generator (pre-merge networks must stay
//! disjoint).

/// Disjoint-set (union-find) structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Find the representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merge the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.num_sets -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// The representative and size of the largest set.
    ///
    /// Returns `None` for an empty structure.
    pub fn largest_set(&mut self) -> Option<(u32, u32)> {
        let n = self.parent.len() as u32;
        let mut best: Option<(u32, u32)> = None;
        for x in 0..n {
            if self.parent[x as usize] == x {
                let s = self.size[x as usize];
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((x, s));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.set_size(2), 1);
    }

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.set_size(1), 3);
        assert_eq!(uf.num_sets(), 4);
    }

    #[test]
    fn largest_set() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        uf.union(1, 2);
        let (_, size) = uf.largest_set().unwrap();
        assert_eq!(size, 3);
        assert!(UnionFind::new(0).largest_set().is_none());
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 99));
        assert_eq!(uf.set_size(50), 100);
    }
}
