//! Tail-tolerant reading of a *growing* v2 trace: the consumer side of
//! live ingest.
//!
//! [`TailReader`] follows an append-only v2 file while a writer is still
//! appending to it. The crucial distinction it adds over
//! [`crate::io::read_log_with_policy`] is at end-of-file: a chunk whose
//! `#%chunk` directive has not arrived yet — or whose final line has no
//! terminator — is **pending**, not truncated. The reader keeps its
//! committed offset before the partial data, reports
//! [`TailBatch::tail_pending`], and the next [`TailReader::poll`] simply
//! rescans the unfinished region; a torn tail is never an error and
//! never a quarantine. A chunk whose directive *is* present but whose
//! CRC or line count mismatches is genuine mid-file corruption and is
//! handled per the same [`RecoveryPolicy`] vocabulary as the batch
//! reader: `Strict` surfaces an error, `Skip` drops the chunk against
//! its error budget, `Repair` degrades to an unbounded `Skip` (repairs
//! need whole-file context a tailer does not have).
//!
//! Commit semantics: the committed offset only ever advances past a
//! *verified* framing boundary (the magic, a chunk directive, the
//! footer, or standalone comment/blank lines). Everything after it is
//! provisional and is re-read on the next poll, so a `kill -9` between
//! polls loses nothing and replaying the same file always commits the
//! same events in the same order — the property the live head's
//! checkpoint/resume machinery is built on.
//!
//! The reader verifies framing (CRCs, counts, the footer); it does *not*
//! apply [`crate::log::EventLog`] invariants (dense ids, duplicate
//! edges…). Consumers feed committed [`TailEvent`]s into an
//! [`crate::log::EventLogBuilder`] and apply their own policy to
//! invariant violations, mirroring the batch reader's split between
//! framing and log validation.

use crate::crc32::Crc32;
use crate::event::Origin;
use crate::io::{
    parse_chunk_directive, parse_end_directive, parse_event_line, trim, RawEvent, RawKind,
    RecoveryPolicy, FORMAT_V2_MAGIC,
};
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::time::{NodeId, Time};

/// One committed event from a tailed trace, in file order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailEvent {
    /// A node arrival (`N <secs> <origin>`); ids are implicit and dense,
    /// assigned by the consumer in commit order.
    Node {
        /// Arrival time.
        time: Time,
        /// Origin network.
        origin: Origin,
    },
    /// An edge arrival (`E <secs> <u> <v>`).
    Edge {
        /// Arrival time.
        time: Time,
        /// One endpoint, as written.
        u: NodeId,
        /// The other endpoint, as written.
        v: NodeId,
    },
}

impl TailEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Time {
        match self {
            TailEvent::Node { time, .. } | TailEvent::Edge { time, .. } => *time,
        }
    }
}

/// Why a poll failed. A torn tail is *not* here by design — it is a
/// normal [`TailBatch::tail_pending`] outcome.
#[derive(Debug)]
pub enum TailError {
    /// The tailed file does not (currently) exist. Often transient: the
    /// writer may not have created it yet, or it is being rotated.
    Missing,
    /// The file is shorter than the already-committed prefix — it was
    /// replaced or truncated underneath us, so all committed state is
    /// invalid. Not recoverable by retrying against the same reader.
    Shrunk {
        /// Bytes previously committed.
        committed: u64,
        /// Current file length.
        len: u64,
    },
    /// The first line is not the v2 magic; only v2 traces can be tailed
    /// (v1 has no framing to distinguish a torn tail from corruption).
    NotV2,
    /// Underlying I/O failure.
    Io(io::Error),
    /// Corruption surfaced under [`RecoveryPolicy::Strict`].
    Corrupt {
        /// 1-based line number of the failed check.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The cumulative error budget of [`RecoveryPolicy::Skip`] was
    /// exceeded across the lifetime of this reader.
    TooManyErrors {
        /// Problems seen so far.
        errors: usize,
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for TailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TailError::Missing => write!(f, "tailed file does not exist"),
            TailError::Shrunk { committed, len } => write!(
                f,
                "tailed file shrank below the committed prefix ({committed} bytes committed, \
                 file is now {len} bytes): it was truncated or replaced"
            ),
            TailError::NotV2 => write!(f, "not a v2 trace: only v2 framing can be tailed"),
            TailError::Io(e) => write!(f, "io error: {e}"),
            TailError::Corrupt { line, reason } => write!(f, "line {line}: corrupt: {reason}"),
            TailError::TooManyErrors { errors, limit } => {
                write!(f, "tail gave up: {errors} errors exceed budget of {limit}")
            }
        }
    }
}

impl std::error::Error for TailError {}

impl From<io::Error> for TailError {
    fn from(e: io::Error) -> Self {
        TailError::Io(e)
    }
}

/// What one [`TailReader::poll`] committed and observed.
#[derive(Debug, Default)]
pub struct TailBatch {
    /// Events committed by this poll, in file order.
    pub events: Vec<TailEvent>,
    /// Chunks whose checksum verified this poll.
    pub chunks_verified: u64,
    /// Chunks dropped this poll (mid-file corruption, quarantined).
    pub chunks_dropped: u64,
    /// Payload lines skipped this poll (malformed lines inside verified
    /// chunks, junk directives).
    pub lines_skipped: u64,
    /// True when uncommitted bytes remain at EOF: an in-progress append
    /// (partial line or chunk without its directive). Retry later.
    pub tail_pending: bool,
    /// How many uncommitted bytes trail the committed offset.
    pub pending_bytes: u64,
    /// `Some(verified)` once the `#%end` footer has been processed; the
    /// stream is complete and further polls return immediately.
    pub footer: Option<bool>,
    /// Byte offset of the committed prefix after this poll.
    pub committed_offset: u64,
}

/// Follows an append-only v2 trace file, committing only verified chunks.
///
/// The reader is a pure function of the file's byte prefix: polling a
/// file twice, or polling it from a fresh reader after a crash, commits
/// identical event sequences. See the module docs for the torn-tail /
/// corruption distinction.
#[derive(Debug)]
pub struct TailReader {
    path: PathBuf,
    policy: RecoveryPolicy,
    /// The format magic has been consumed.
    started: bool,
    committed_offset: u64,
    /// 1-based number of the last committed line.
    committed_lineno: usize,
    /// Running CRC over every committed payload line (footer check).
    total_crc: Crc32,
    /// Payload lines committed (the footer's `events=` count, which
    /// includes lines a skip policy later discarded as malformed).
    payload_committed: u64,
    footer: Option<bool>,
    /// Cumulative problems (dropped chunks + skipped lines) for the
    /// `Skip` error budget.
    problems: usize,
}

impl TailReader {
    /// Tail the v2 trace at `path` under `policy`.
    pub fn new<P: AsRef<Path>>(path: P, policy: RecoveryPolicy) -> TailReader {
        TailReader {
            path: path.as_ref().to_path_buf(),
            policy,
            started: false,
            committed_offset: 0,
            committed_lineno: 0,
            total_crc: Crc32::new(),
            payload_committed: 0,
            footer: None,
            problems: 0,
        }
    }

    /// Byte offset of the verified, committed prefix.
    pub fn committed_offset(&self) -> u64 {
        self.committed_offset
    }

    /// Whether the `#%end` footer has been seen (stream complete).
    pub fn finished(&self) -> bool {
        self.footer.is_some()
    }

    /// Cumulative problems (dropped chunks + skipped lines) so far.
    pub fn problems(&self) -> usize {
        self.problems
    }

    fn strict(&self) -> bool {
        matches!(self.policy, RecoveryPolicy::Strict)
    }

    /// Error budget for quarantining; `Repair` degrades to unbounded
    /// `Skip` (see module docs).
    fn budget(&self) -> usize {
        match self.policy {
            RecoveryPolicy::Strict => 0,
            RecoveryPolicy::Skip { max_errors } => max_errors,
            RecoveryPolicy::Repair { .. } => usize::MAX,
        }
    }

    /// Count `n` problems against the budget.
    fn spend(&mut self, n: usize) -> Result<(), TailError> {
        self.problems += n;
        if self.problems > self.budget() {
            return Err(TailError::TooManyErrors {
                errors: self.problems,
                limit: self.budget(),
            });
        }
        Ok(())
    }

    /// Read the file once from the committed offset, committing every
    /// verified framing boundary encountered. Returns what was committed
    /// plus whether an in-progress append (torn tail) remains at EOF.
    pub fn poll(&mut self) -> Result<TailBatch, TailError> {
        osn_obs::counter!("ingest.tail_polls").inc();
        let mut batch = TailBatch {
            committed_offset: self.committed_offset,
            footer: self.footer,
            ..TailBatch::default()
        };
        if self.footer.is_some() {
            return Ok(batch);
        }
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(TailError::Missing),
            Err(e) => return Err(e.into()),
        };
        let len = file.metadata()?.len();
        if len < self.committed_offset {
            return Err(TailError::Shrunk {
                committed: self.committed_offset,
                len,
            });
        }
        file.seek(SeekFrom::Start(self.committed_offset))?;
        let mut r = BufReader::new(file);

        // Scan state: everything since the last commit point is one
        // provisional region, thrown away (and re-read next poll) unless
        // a framing boundary commits it.
        let mut scan_pos = self.committed_offset;
        let mut lineno = self.committed_lineno;
        let mut region_payload: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut region_junk: usize = 0;
        let mut chunk_crc = Crc32::new();
        let mut partial_tail = false;

        loop {
            let raw = match next_line(&mut r)? {
                None => break,
                Some(raw) => raw,
            };
            if raw.last() != Some(&b'\n') {
                // Unterminated final line: the writer is mid-append.
                scan_pos += raw.len() as u64;
                partial_tail = true;
                break;
            }
            scan_pos += raw.len() as u64;
            lineno += 1;
            let t = trim(&raw).to_vec();

            if !self.started {
                if t != FORMAT_V2_MAGIC.as_bytes() {
                    return Err(TailError::NotV2);
                }
                self.started = true;
                self.commit(scan_pos, lineno, &mut batch);
                continue;
            }

            if t.is_empty() || (t.first() == Some(&b'#') && !t.starts_with(b"#%")) {
                // Blank or ordinary comment: not checksummed. Commit it
                // only when nothing provisional precedes it.
                if region_payload.is_empty() && region_junk == 0 {
                    self.commit(scan_pos, lineno, &mut batch);
                }
                continue;
            }

            if t.starts_with(b"#%") {
                let directive = std::str::from_utf8(&t).ok().map(str::to_string);
                let parsed_chunk = directive
                    .as_deref()
                    .and_then(|d| d.strip_prefix("#%chunk "))
                    .and_then(parse_chunk_directive);
                let parsed_end = directive
                    .as_deref()
                    .and_then(|d| d.strip_prefix("#%end "))
                    .and_then(parse_end_directive);

                if let Some((n, crc)) = parsed_chunk {
                    let verify_started = osn_obs::enabled().then(std::time::Instant::now);
                    let got = chunk_crc.finalize();
                    if n != region_payload.len() {
                        let reason = format!(
                            "chunk declares {} lines but {} were read",
                            n,
                            region_payload.len()
                        );
                        self.drop_chunk(lineno, &reason, &mut region_payload, &mut batch)?;
                    } else if crc != got {
                        let reason =
                            format!("chunk checksum mismatch: expected {crc:08x}, got {got:08x}");
                        self.drop_chunk(lineno, &reason, &mut region_payload, &mut batch)?;
                    } else {
                        batch.chunks_verified += 1;
                        osn_obs::counter!("ingest.chunks_verified").inc();
                        for (ln, bytes) in region_payload.drain(..) {
                            let line = trim(&bytes);
                            self.total_crc.update(line);
                            self.total_crc.update(b"\n");
                            self.payload_committed += 1;
                            match std::str::from_utf8(line)
                                .map_err(|_| ())
                                .and_then(|s| parse_event_line(s, ln).map_err(|_| ()))
                            {
                                Ok(ev) => batch.events.push(convert(ev)),
                                Err(()) if self.strict() => {
                                    return Err(TailError::Corrupt {
                                        line: ln,
                                        reason: "unparseable payload line in verified chunk"
                                            .to_string(),
                                    });
                                }
                                Err(()) => {
                                    batch.lines_skipped += 1;
                                    self.spend(1)?;
                                }
                            }
                        }
                    }
                    if let Some(t0) = verify_started {
                        osn_obs::histogram!("ingest.chunk_verify_us").record_duration(t0.elapsed());
                    }
                    batch.lines_skipped += region_junk as u64;
                    self.spend(std::mem::take(&mut region_junk))?;
                    chunk_crc = Crc32::new();
                    self.commit(scan_pos, lineno, &mut batch);
                    continue;
                }

                if let Some((n, crc)) = parsed_end {
                    if !region_payload.is_empty() {
                        let reason = "unterminated chunk before footer".to_string();
                        self.drop_chunk(lineno, &reason, &mut region_payload, &mut batch)?;
                    }
                    let got = self.total_crc.finalize();
                    let ok = n as u64 == self.payload_committed && crc == got;
                    if !ok && self.strict() {
                        return Err(TailError::Corrupt {
                            line: lineno,
                            reason: format!(
                                "footer mismatch: declared {n} events crc {crc:08x}, \
                                 committed {} events crc {got:08x}",
                                self.payload_committed
                            ),
                        });
                    }
                    batch.lines_skipped += region_junk as u64;
                    self.spend(std::mem::take(&mut region_junk))?;
                    self.footer = Some(ok);
                    batch.footer = Some(ok);
                    self.commit(scan_pos, lineno, &mut batch);
                    // Anything after the footer is out of band; stop here
                    // for good (`finished()` short-circuits future polls).
                    break;
                }

                // Unknown, repeated-magic, or malformed directive: junk.
                if self.strict() {
                    let shown = directive.unwrap_or_else(|| "<non-utf8>".to_string());
                    return Err(TailError::Corrupt {
                        line: lineno,
                        reason: format!("bad directive '{shown}'"),
                    });
                }
                if region_payload.is_empty() {
                    batch.lines_skipped += 1;
                    self.spend(1)?;
                    self.commit(scan_pos, lineno, &mut batch);
                } else {
                    region_junk += 1;
                }
                continue;
            }

            // Payload line: provisional until its chunk verifies.
            chunk_crc.update(&t);
            chunk_crc.update(b"\n");
            region_payload.push((lineno, raw));
        }

        batch.tail_pending = self.footer.is_none()
            && (partial_tail || !region_payload.is_empty() || region_junk > 0 || !self.started);
        batch.pending_bytes = scan_pos.saturating_sub(self.committed_offset);
        batch.committed_offset = self.committed_offset;
        if batch.tail_pending {
            osn_obs::counter!("ingest.torn_tail_polls").inc();
        }
        osn_obs::counter!("ingest.events").add(batch.events.len() as u64);
        osn_obs::counter!("ingest.lines_skipped").add(batch.lines_skipped);
        Ok(batch)
    }

    fn commit(&mut self, pos: u64, lineno: usize, batch: &mut TailBatch) {
        osn_obs::counter!("ingest.bytes").add(pos.saturating_sub(self.committed_offset));
        osn_obs::counter!("ingest.lines").add((lineno - self.committed_lineno) as u64);
        self.committed_offset = pos;
        self.committed_lineno = lineno;
        batch.committed_offset = pos;
    }

    fn drop_chunk(
        &mut self,
        lineno: usize,
        reason: &str,
        pending: &mut Vec<(usize, Vec<u8>)>,
        batch: &mut TailBatch,
    ) -> Result<(), TailError> {
        if self.strict() {
            return Err(TailError::Corrupt {
                line: lineno,
                reason: reason.to_string(),
            });
        }
        let dropped = pending.len();
        pending.clear();
        batch.chunks_dropped += 1;
        osn_obs::counter!("ingest.chunks_dropped").inc();
        // One budget unit per dropped chunk plus its lines, matching the
        // batch Ingestor's accounting of a quarantined chunk.
        self.spend(dropped + 1)
    }
}

/// Next raw line including its terminator (absent only at EOF), retrying
/// interrupted reads like the batch reader does.
fn next_line<R: BufRead>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut buf = Vec::new();
    loop {
        match r.read_until(b'\n', &mut buf) {
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if buf.is_empty() {
        Ok(None)
    } else {
        Ok(Some(buf))
    }
}

fn convert(raw: RawEvent) -> TailEvent {
    match raw.kind {
        RawKind::Node(origin) => TailEvent::Node {
            time: Time(raw.time),
            origin,
        },
        RawKind::Edge(u, v) => TailEvent::Edge {
            time: Time(raw.time),
            u: NodeId(u),
            v: NodeId(v),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_log_with_policy, write_log_v2_chunked, LogAppender};
    use crate::log::{EventLog, EventLogBuilder};
    use crate::testutil::SlowAppendWriter;
    use std::fs::OpenOptions;
    use std::io::Write;
    use std::time::Duration;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("osn-tail-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_log(days: u64) -> EventLog {
        let mut b = EventLogBuilder::new();
        let mut ids = Vec::new();
        for d in 0..days {
            let t = Time::from_days(d);
            let id = b.add_node(t, Origin::Core).unwrap();
            ids.push(id);
            if ids.len() >= 2 {
                b.add_edge(t.plus_seconds(10), ids[ids.len() - 2], id)
                    .unwrap();
            }
        }
        b.build()
    }

    fn append(path: &Path, bytes: &[u8]) {
        let mut f = OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .unwrap();
        f.write_all(bytes).unwrap();
        f.flush().unwrap();
    }

    fn build_from(events: &[TailEvent]) -> EventLog {
        let mut b = EventLogBuilder::new();
        for e in events {
            match *e {
                TailEvent::Node { time, origin } => {
                    b.add_node(time, origin).unwrap();
                }
                TailEvent::Edge { time, u, v } => b.add_edge(time, u, v).unwrap(),
            }
        }
        b.build()
    }

    fn skip() -> RecoveryPolicy {
        RecoveryPolicy::Skip {
            max_errors: usize::MAX,
        }
    }

    #[test]
    fn torn_tail_is_pending_never_quarantined() {
        let dir = scratch("torn");
        let path = dir.join("trace.events");
        append(&path, format!("{FORMAT_V2_MAGIC}\n").as_bytes());
        let mut tail = TailReader::new(&path, skip());

        // Header alone: committed, nothing pending.
        let b = tail.poll().unwrap();
        assert!(b.events.is_empty() && !b.tail_pending && b.chunks_dropped == 0);

        // Payload without its chunk directive: pending, zero drops.
        append(&path, b"N 0 core\nN 10 core\n");
        let b = tail.poll().unwrap();
        assert!(
            b.events.is_empty(),
            "uncommitted chunk must not emit events"
        );
        assert!(b.tail_pending && b.pending_bytes > 0);
        assert_eq!(b.chunks_dropped, 0, "a torn tail is not corruption");

        // Partial *line* at EOF: still pending.
        append(&path, b"E 20 0");
        let b = tail.poll().unwrap();
        assert!(b.tail_pending && b.events.is_empty() && b.chunks_dropped == 0);

        // Finish the line and terminate the chunk: everything commits.
        let mut crc = Crc32::new();
        for line in ["N 0 core", "N 10 core", "E 20 0 1"] {
            crc.update(line.as_bytes());
            crc.update(b"\n");
        }
        append(
            &path,
            format!(" 1\n#%chunk lines=3 crc={:08x}\n", crc.finalize()).as_bytes(),
        );
        let b = tail.poll().unwrap();
        assert_eq!(b.events.len(), 3);
        assert_eq!(b.chunks_verified, 1);
        assert!(!b.tail_pending);
        assert_eq!(tail.problems(), 0);
    }

    #[test]
    fn torn_chunk_directive_is_pending() {
        let dir = scratch("torn-directive");
        let path = dir.join("trace.events");
        append(
            &path,
            format!("{FORMAT_V2_MAGIC}\nN 0 core\n#%chunk lin").as_bytes(),
        );
        let mut tail = TailReader::new(&path, skip());
        let b = tail.poll().unwrap();
        assert!(b.tail_pending && b.events.is_empty() && b.chunks_dropped == 0);
        // The directive completes with the right checksum.
        let crc = crate::crc32::crc32(b"N 0 core\n");
        append(&path, format!("es=1 crc={crc:08x}\n").as_bytes());
        let b = tail.poll().unwrap();
        assert_eq!(b.events.len(), 1);
        assert!(!b.tail_pending);
    }

    #[test]
    fn mid_file_corruption_is_quarantined_and_strict_errors() {
        let dir = scratch("corrupt");
        let path = dir.join("trace.events");
        let good1 = "N 0 core";
        let bad = "N 5 core"; // will be checksummed as something else
        let good2 = "N 20 core";
        let mut text = format!("{FORMAT_V2_MAGIC}\n");
        let chunk = |line: &str| {
            format!(
                "{line}\n#%chunk lines=1 crc={:08x}\n",
                crate::crc32::crc32(format!("{line}\n").as_bytes())
            )
        };
        text.push_str(&chunk(good1));
        // Corrupt: directive present, CRC of different bytes.
        text.push_str(&format!(
            "{bad}\n#%chunk lines=1 crc={:08x}\n",
            crate::crc32::crc32(b"N 6 core\n")
        ));
        text.push_str(&chunk(good2));
        append(&path, text.as_bytes());

        let mut tail = TailReader::new(&path, skip());
        let b = tail.poll().unwrap();
        assert_eq!(b.chunks_dropped, 1, "mid-file CRC failure must quarantine");
        assert_eq!(b.chunks_verified, 2);
        assert_eq!(b.events.len(), 2);
        assert!(!b.tail_pending);
        assert!(tail.problems() > 0);

        let mut strict = TailReader::new(&path, RecoveryPolicy::Strict);
        match strict.poll() {
            Err(TailError::Corrupt { .. }) => {}
            other => panic!("strict tail must fail on corruption, got {other:?}"),
        }
    }

    #[test]
    fn skip_budget_is_enforced() {
        let dir = scratch("budget");
        let path = dir.join("trace.events");
        let mut text = format!("{FORMAT_V2_MAGIC}\n");
        text.push_str("N 0 core\n#%chunk lines=1 crc=00000000\n"); // wrong crc
        append(&path, text.as_bytes());
        let mut tail = TailReader::new(&path, RecoveryPolicy::Skip { max_errors: 0 });
        match tail.poll() {
            Err(TailError::TooManyErrors { .. }) => {}
            other => panic!("budget must trip, got {other:?}"),
        }
    }

    #[test]
    fn footer_completes_the_stream() {
        let dir = scratch("footer");
        let path = dir.join("trace.events");
        let log = tiny_log(4);
        let mut bytes = Vec::new();
        write_log_v2_chunked(&log, &mut bytes, 3).unwrap();
        append(&path, &bytes);
        let mut tail = TailReader::new(&path, skip());
        let b = tail.poll().unwrap();
        assert_eq!(b.footer, Some(true));
        assert_eq!(b.events.len(), log.events().len());
        assert!(tail.finished());
        // Completed streams answer immediately without re-reading.
        let again = tail.poll().unwrap();
        assert!(again.events.is_empty() && again.footer == Some(true));
    }

    #[test]
    fn missing_and_shrunk_files_are_distinct_errors() {
        let dir = scratch("missing");
        let path = dir.join("trace.events");
        let mut tail = TailReader::new(&path, skip());
        assert!(matches!(tail.poll(), Err(TailError::Missing)));

        // A footer-less file (writer still active) that later shrinks
        // below the committed prefix: committed state is invalid.
        let line = "N 0 core";
        append(
            &path,
            format!(
                "{FORMAT_V2_MAGIC}\n{line}\n#%chunk lines=1 crc={:08x}\n",
                crate::crc32::crc32(format!("{line}\n").as_bytes())
            )
            .as_bytes(),
        );
        let b = tail.poll().unwrap();
        assert_eq!(b.events.len(), 1);
        std::fs::write(&path, format!("{FORMAT_V2_MAGIC}\n").as_bytes()).unwrap();
        assert!(matches!(tail.poll(), Err(TailError::Shrunk { .. })));
    }

    #[test]
    fn tailed_events_match_batch_reader() {
        let dir = scratch("differential");
        let path = dir.join("trace.events");
        let log = tiny_log(12);
        let mut bytes = Vec::new();
        write_log_v2_chunked(&log, &mut bytes, 5).unwrap();

        // Feed the file to the tailer in awkward byte-sized increments.
        let mut tail = TailReader::new(&path, skip());
        let mut events = Vec::new();
        for piece in bytes.chunks(37) {
            append(&path, piece);
            events.extend(tail.poll().unwrap().events);
        }
        let rebuilt = build_from(&events);
        let (batch, report) = read_log_with_policy(&bytes[..], &RecoveryPolicy::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(rebuilt.fingerprint(), batch.fingerprint());
        assert_eq!(rebuilt.num_nodes(), log.num_nodes());
        assert_eq!(rebuilt.num_edges(), log.num_edges());
        assert_eq!(tail.problems(), 0);
    }

    #[test]
    fn log_appender_output_reads_back_clean() {
        let dir = scratch("appender");
        let path = dir.join("trace.events");
        let log = tiny_log(9);
        let file = File::create(&path).unwrap();
        let mut app = LogAppender::new(file).unwrap();
        app.append_comment("grown incrementally").unwrap();
        for day_events in log.events().chunks(4) {
            app.append_chunk(day_events).unwrap();
        }
        assert_eq!(app.events_written(), log.events().len() as u64);
        app.finish().unwrap();

        let bytes = std::fs::read(&path).unwrap();
        let (read, report) = read_log_with_policy(&bytes[..], &RecoveryPolicy::Strict).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(read.fingerprint(), log.fingerprint());
    }

    #[test]
    fn slow_append_exposes_the_torn_window_deterministically() {
        let dir = scratch("slow");
        let path = dir.join("trace.events");
        append(&path, format!("{FORMAT_V2_MAGIC}\n").as_bytes());

        let line = "N 0 core";
        let chunk = format!(
            "{line}\n#%chunk lines=1 crc={:08x}\n",
            crate::crc32::crc32(format!("{line}\n").as_bytes())
        );
        let file = OpenOptions::new().append(true).open(&path).unwrap();
        let mut w = SlowAppendWriter::new(file, Duration::from_millis(0));

        // Phase one: only the first half of the chunk is on disk.
        let split = w.append_torn(chunk.as_bytes()).unwrap();
        assert!(split > 0 && split < chunk.len());
        let mut tail = TailReader::new(&path, skip());
        let b = tail.poll().unwrap();
        assert!(b.tail_pending, "half-written chunk must read as pending");
        assert_eq!(
            b.chunks_dropped, 0,
            "zero quarantines from an in-progress append"
        );
        assert!(b.events.is_empty());

        // Phase two: the writer finishes its flush; the chunk commits.
        w.complete(chunk.as_bytes(), split).unwrap();
        let b = tail.poll().unwrap();
        assert_eq!(b.events.len(), 1);
        assert_eq!(b.chunks_verified, 1);
        assert!(!b.tail_pending);
        assert_eq!(tail.problems(), 0);
    }
}
