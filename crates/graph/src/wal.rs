//! Write-ahead log for the durable write plane.
//!
//! A [`Wal`] owns one v2 trace file (the file `osn serve --follow` tails)
//! plus a sidecar directory of WAL *segments*. Every accepted batch is:
//!
//! 1. serialised as one v2 chunk (payload lines + `#%chunk` directive) and
//!    appended to the active segment in a single `write(2)`, preceded by a
//!    self-checksummed *batch marker* comment that records the sequence
//!    number and idempotency key;
//! 2. made durable by a **group-commit** `fdatasync` — concurrent appenders
//!    elect a leader that syncs once for every batch written so far;
//! 3. only then applied to the trace file (same chunk bytes, no marker), so
//!    the trace never contains a chunk the WAL could lose. The live head
//!    picks the chunk up through the ordinary [`crate::tail::TailReader`]
//!    poll path — the write plane needs no new ingest machinery.
//!
//! A `kill -9` at any byte therefore leaves: a torn segment tail (truncated
//! on reopen; the batch was never acknowledged), a WAL chunk missing from
//! the trace (re-applied on reopen from the segment), or a torn trace tail
//! (truncated on reopen; re-applied from the segment). In every case the
//! client's retry with the same `Idempotency-Key` is deduplicated against
//! the marker window rebuilt from the retained segments, so at-least-once
//! clients never double-apply and acknowledged events are never lost.
//!
//! On clean shutdown [`Wal::seal`] writes `#%end` footers to both the
//! segment and the trace, leaving the trace a strict-clean batch-readable
//! merged log; the next `open` *unseals* the trace (drops the footer) so
//! tailing and appending can resume.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use crate::atomicfile::write_bytes_atomic;
use crate::crc32::Crc32;
use crate::event::Origin;
use crate::io::{
    parse_chunk_directive, parse_end_directive, parse_event_line, trim, RawKind, FORMAT_V2_MAGIC,
};

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// `fdatasync` segments before acknowledging (group-commit). Disable
    /// only for benchmarks and tests; without it a crash can lose
    /// acknowledged batches.
    pub fsync: bool,
    /// Rotate the active segment once it grows past this many bytes.
    pub rotate_bytes: u64,
    /// Keep this many sealed segments behind the active one; older
    /// fully-applied segments are pruned. The idempotency window only
    /// covers retained segments.
    pub retain_segments: usize,
    /// Maximum number of idempotency keys remembered in memory.
    pub idem_window: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: true,
            rotate_bytes: 4 << 20,
            retain_segments: 4,
            idem_window: 65_536,
        }
    }
}

/// One event submitted to the write plane. Node ids are implicit (dense,
/// in arrival order), matching the v2 line format where `N` lines carry
/// only a timestamp and origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalEvent {
    pub time: u64,
    pub kind: WalEventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalEventKind {
    Node(Origin),
    Edge(u32, u32),
}

impl WalEvent {
    pub fn node(time: u64, origin: Origin) -> Self {
        WalEvent {
            time,
            kind: WalEventKind::Node(origin),
        }
    }

    pub fn edge(time: u64, u: u32, v: u32) -> Self {
        WalEvent {
            time,
            kind: WalEventKind::Edge(u, v),
        }
    }

    /// Parse one `N`/`E` payload line (the same grammar the trace reader
    /// accepts).
    pub fn parse_line(line: &str) -> Result<WalEvent, String> {
        let raw = parse_event_line(line, 1).map_err(|e| e.to_string())?;
        Ok(match raw.kind {
            RawKind::Node(origin) => WalEvent::node(raw.time, origin),
            RawKind::Edge(u, v) => WalEvent::edge(raw.time, u, v),
        })
    }

    fn format_line(&self) -> String {
        match self.kind {
            WalEventKind::Node(origin) => format!("N {} {}", self.time, origin.label()),
            WalEventKind::Edge(u, v) => format!("E {} {} {}", self.time, u, v),
        }
    }
}

/// Errors from the write-ahead log.
#[derive(Debug)]
pub enum WalError {
    Io(io::Error),
    /// Mid-file damage (not a torn tail). The WAL refuses to open; a torn
    /// tail can only ever be the *last* region of a file.
    Corrupt {
        path: PathBuf,
        line: usize,
        reason: String,
    },
    /// The log was sealed (clean shutdown in progress).
    Sealed,
    /// Batch violates the global time order.
    OutOfOrder {
        time: u64,
        last: u64,
    },
    /// Batch contains an invalid event.
    BadEvent {
        index: usize,
        reason: String,
    },
    /// Idempotency key is malformed (whitespace / too long / non-ASCII).
    BadKey(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { path, line, reason } => {
                write!(f, "wal corrupt: {}:{line}: {reason}", path.display())
            }
            WalError::Sealed => write!(f, "wal is sealed"),
            WalError::OutOfOrder { time, last } => write!(
                f,
                "batch out of order: event time {time} precedes log end {last}"
            ),
            WalError::BadEvent { index, reason } => {
                write!(f, "bad event at index {index}: {reason}")
            }
            WalError::BadKey(k) => write!(f, "bad idempotency key {k:?}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Acknowledgement for an accepted (or deduplicated) batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalAck {
    /// Sequence number assigned when the batch was first committed.
    pub seq: u64,
    /// Events in the batch.
    pub events: u64,
    /// True when the batch was already committed under the same
    /// idempotency key and nothing was written.
    pub duplicate: bool,
}

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Clone, Default)]
pub struct WalOpenReport {
    /// Torn bytes truncated from the trace tail.
    pub trace_truncated_bytes: u64,
    /// Torn bytes truncated from the active segment tail.
    pub wal_truncated_bytes: u64,
    /// The trace had a `#%end` footer that was removed so appends and
    /// tailing can resume.
    pub trace_unsealed: bool,
    /// Segments retained on disk after recovery.
    pub segments: usize,
    /// Durable WAL chunks that were missing from the trace and re-applied.
    pub replayed_chunks: u64,
    /// Events re-applied to the trace.
    pub replayed_events: u64,
    /// Idempotency keys rebuilt from segment markers.
    pub keys_loaded: usize,
    /// Next sequence number that will be assigned.
    pub next_seq: u64,
}

impl WalOpenReport {
    /// One-line human summary for the serve preflight banner.
    pub fn summary(&self) -> String {
        format!(
            "wal: {} segment(s), next seq {}, {} key(s) in window, replayed {} chunk(s)/{} event(s){}{}",
            self.segments,
            self.next_seq,
            self.keys_loaded,
            self.replayed_chunks,
            self.replayed_events,
            if self.trace_unsealed {
                ", unsealed trace"
            } else {
                ""
            },
            if self.trace_truncated_bytes + self.wal_truncated_bytes > 0 {
                ", truncated torn tail"
            } else {
                ""
            },
        )
    }
}

/// Point-in-time counters for admission control and `/metrics`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    pub appends: u64,
    pub duplicates: u64,
    pub fsyncs: u64,
    pub sync_waiters: u64,
    pub last_seq: u64,
}

/// Default WAL directory for a trace: `<trace>.wal/`.
pub fn wal_dir_for(trace: &Path) -> PathBuf {
    let mut os = trace.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

fn segment_name(index: u64) -> String {
    format!("seg-{index:06}.log")
}

/// Segment files in `dir`, sorted by index.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = match name.to_str() {
            Some(n) => n,
            None => continue,
        };
        if let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            out.push((idx, entry.path()));
        }
    }
    out.sort_by_key(|(i, _)| *i);
    Ok(out)
}

/// Maximum accepted idempotency-key length.
pub const MAX_KEY_LEN: usize = 128;

/// Validate a client-supplied idempotency key: printable ASCII, no
/// whitespace (keys are embedded in space-delimited marker comments).
pub fn validate_key(key: &str) -> Result<(), WalError> {
    if key.is_empty()
        || key.len() > MAX_KEY_LEN
        || key == "-"
        || !key.bytes().all(|b| b.is_ascii_graphic())
    {
        return Err(WalError::BadKey(key.to_string()));
    }
    Ok(())
}

/// `# batch seq=<n> key=<k> events=<n> mark=<crc>` — the marker comment
/// written immediately before each segment chunk, in the same `write(2)`.
/// The `mark` CRC makes the marker self-checking: a torn or damaged marker
/// is indistinguishable from an ordinary comment and is ignored.
fn marker_line(seq: u64, key: Option<&str>, events: u64) -> String {
    let body = format!("seq={seq} key={} events={events}", key.unwrap_or("-"));
    let mut c = Crc32::new();
    c.update(body.as_bytes());
    format!("# batch {body} mark={:08x}\n", c.finalize())
}

/// Parse a trimmed comment line as a batch marker; `None` when it is an
/// ordinary comment (including damaged markers — the CRC must match).
fn parse_marker(t: &str) -> Option<(u64, Option<String>, u64)> {
    let rest = t.strip_prefix("# batch ")?;
    let (body, mark) = rest.rsplit_once(" mark=")?;
    let mark = u32::from_str_radix(mark, 16).ok()?;
    let mut c = Crc32::new();
    c.update(body.as_bytes());
    if c.finalize() != mark {
        return None;
    }
    let mut it = body.split_ascii_whitespace();
    let seq = it.next()?.strip_prefix("seq=")?.parse().ok()?;
    let key = it.next()?.strip_prefix("key=")?;
    let events = it.next()?.strip_prefix("events=")?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    let key = if key == "-" {
        None
    } else {
        Some(key.to_string())
    };
    Some((seq, key, events))
}

/// One verified chunk found by [`scan_stream`].
struct ScannedChunk {
    /// Byte offset just past the chunk's `#%chunk` directive line.
    end_offset: u64,
    /// Valid batch marker preceding the chunk, if any.
    marker: Option<(u64, Option<String>, u64)>,
    /// Payload lines (only when scanning segments for replay).
    payload: Vec<String>,
}

/// Result of scanning one v2 stream (trace or segment) from byte zero.
struct StreamScan {
    /// Verified prefix length, excluding any footer line.
    committed: u64,
    /// Total file length.
    file_len: u64,
    /// Payload lines inside the verified prefix.
    payload_lines: u64,
    /// Running CRC over the verified payload.
    total_crc: Crc32,
    /// `N` lines in the verified prefix.
    node_lines: u64,
    /// Timestamp of the last verified payload line.
    last_time: u64,
    /// Verified `#%end` footer (byte offset where the footer line starts).
    footer_at: Option<u64>,
    chunks: Vec<ScannedChunk>,
}

impl StreamScan {
    /// Bytes past the verified prefix that are not a footer — i.e. the
    /// torn tail a reopen truncates. A footered stream has none.
    fn torn_bytes(&self) -> u64 {
        if self.footer_at.is_some() {
            0
        } else {
            self.file_len - self.committed
        }
    }
}

/// Scan a v2 stream, verifying framing from the start. A verification
/// failure that is followed by *more* framed data is mid-file damage and
/// returns [`WalError::Corrupt`]; a failure at the physical tail is an
/// ordinary torn write and simply ends the verified prefix.
fn scan_stream(path: &Path, collect_payload: bool) -> Result<StreamScan, WalError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let mut scan = StreamScan {
        committed: 0,
        file_len,
        payload_lines: 0,
        total_crc: Crc32::new(),
        node_lines: 0,
        last_time: 0,
        footer_at: None,
        chunks: Vec::new(),
    };
    let mut pos = 0u64;
    let mut lineno = 0usize;
    let mut started = false;
    // Provisional (unverified) region since the last committed boundary.
    let mut region_lines: Vec<String> = Vec::new();
    let mut region_crc = Crc32::new();
    let mut pending_marker: Option<(u64, Option<String>, u64)> = None;
    // First framing failure seen; fatal only if framed data follows.
    let mut failure: Option<(usize, String)> = None;

    let corrupt = |line: usize, reason: String| WalError::Corrupt {
        path: path.to_path_buf(),
        line,
        reason,
    };

    let mut raw = Vec::new();
    loop {
        raw.clear();
        let n = r.read_until(b'\n', &mut raw)?;
        if n == 0 {
            break;
        }
        lineno += 1;
        let line_start = pos;
        pos += n as u64;
        if raw.last() != Some(&b'\n') {
            // Unterminated final line: torn tail, never counts as framing.
            break;
        }
        if let Some((line, reason)) = &failure {
            // After a failure we only look for later framed data, which
            // upgrades the failure from "torn tail" to "corrupt".
            let t = trim(&raw);
            if t.starts_with(b"#%") {
                return Err(corrupt(*line, reason.clone()));
            }
            continue;
        }
        let t = match std::str::from_utf8(trim(&raw)) {
            Ok(t) => t,
            Err(_) => {
                failure = Some((lineno, "non-utf8 line".to_string()));
                continue;
            }
        };
        if !started {
            if t == FORMAT_V2_MAGIC {
                started = true;
                scan.committed = pos;
                continue;
            }
            return Err(corrupt(lineno, format!("missing v2 magic, got {t:?}")));
        }
        if scan.footer_at.is_some() {
            return Err(corrupt(lineno, "data after #%end footer".to_string()));
        }
        if t.is_empty() || (t.starts_with('#') && !t.starts_with("#%")) {
            if region_lines.is_empty() {
                if let Some(m) = parse_marker(t) {
                    pending_marker = Some(m);
                }
                scan.committed = pos;
            }
            // Comments inside a provisional region are legal but commit
            // only with their chunk.
            continue;
        }
        if let Some(rest) = t.strip_prefix("#%chunk ") {
            match parse_chunk_directive(rest) {
                Some((lines, crc))
                    if lines == region_lines.len() && crc == region_crc.clone().finalize() =>
                {
                    for (i, l) in region_lines.iter().enumerate() {
                        let ev = parse_event_line(l, lineno.saturating_sub(region_lines.len() - i))
                            .map_err(|e| corrupt(lineno, e.to_string()))?;
                        if let RawKind::Node(_) = ev.kind {
                            scan.node_lines += 1;
                        }
                        scan.last_time = ev.time;
                        scan.total_crc.update(l.as_bytes());
                        scan.total_crc.update(b"\n");
                    }
                    scan.payload_lines += region_lines.len() as u64;
                    scan.chunks.push(ScannedChunk {
                        end_offset: pos,
                        marker: pending_marker.take(),
                        payload: if collect_payload {
                            std::mem::take(&mut region_lines)
                        } else {
                            Vec::new()
                        },
                    });
                    region_lines.clear();
                    region_crc = Crc32::new();
                    scan.committed = pos;
                }
                _ => {
                    failure = Some((lineno, "chunk directive verification failed".to_string()));
                }
            }
            continue;
        }
        if let Some(rest) = t.strip_prefix("#%end ") {
            if !region_lines.is_empty() {
                failure = Some((lineno, "footer inside unterminated chunk".to_string()));
                continue;
            }
            match parse_end_directive(rest) {
                Some((events, crc))
                    if events as u64 == scan.payload_lines
                        && crc == scan.total_crc.clone().finalize() =>
                {
                    scan.footer_at = Some(line_start);
                }
                _ => {
                    return Err(corrupt(lineno, "footer verification failed".to_string()));
                }
            }
            continue;
        }
        if t.starts_with("#%") {
            failure = Some((lineno, format!("unknown directive {t:?}")));
            continue;
        }
        // Payload line: provisionally part of the current region.
        region_crc.update(t.as_bytes());
        region_crc.update(b"\n");
        region_lines.push(t.to_string());
    }
    Ok(scan)
}

const SIDECAR_NAME: &str = "applied.ckpt";

/// The `applied.ckpt` sidecar records a (trace length, last applied seq)
/// pair from which recovery counts forward. It is only advanced at open,
/// rotation and seal — staleness is fine, it just means more counting.
fn write_sidecar(dir: &Path, trace_offset: u64, seq: u64) -> io::Result<()> {
    let body = format!("wal-applied v1\ntrace_offset {trace_offset}\nseq {seq}\n");
    write_bytes_atomic(&dir.join(SIDECAR_NAME), body.as_bytes())
}

fn read_sidecar(dir: &Path) -> io::Result<Option<(u64, u64)>> {
    let raw = match fs::read_to_string(dir.join(SIDECAR_NAME)) {
        Ok(r) => r,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut lines = raw.lines();
    if lines.next() != Some("wal-applied v1") {
        return Ok(None);
    }
    let off = lines
        .next()
        .and_then(|l| l.strip_prefix("trace_offset "))
        .and_then(|v| v.parse().ok());
    let seq = lines
        .next()
        .and_then(|l| l.strip_prefix("seq "))
        .and_then(|v| v.parse().ok());
    Ok(off.zip(seq))
}

fn fsync_dir(dir: &Path) {
    // Directory fsync is best-effort and unix-only; rotation is repaired
    // by open() anyway if the new segment's dirent is lost.
    #[cfg(unix)]
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    #[cfg(not(unix))]
    let _ = dir;
}

/// A batch serialised for the trace, awaiting its WAL fsync before it may
/// be applied.
struct PendingApply {
    seq: u64,
    bytes: Vec<u8>,
}

struct Inner {
    trace: File,
    trace_len: u64,
    seg: File,
    seg_index: u64,
    seg_bytes: u64,
    seg_payload: u64,
    seg_crc: Crc32,
    next_seq: u64,
    applied_seq: u64,
    // Running totals for the trace footer written at seal time.
    total_crc: Crc32,
    payload_lines: u64,
    node_count: u64,
    last_time: u64,
    sealed: bool,
    pending: VecDeque<PendingApply>,
    idem: HashMap<String, (u64, u64)>,
    idem_order: VecDeque<String>,
}

impl Inner {
    fn remember_key(&mut self, key: String, seq: u64, events: u64, window: usize) {
        if window == 0 {
            return;
        }
        while self.idem_order.len() >= window {
            if let Some(old) = self.idem_order.pop_front() {
                self.idem.remove(&old);
            }
        }
        self.idem.insert(key.clone(), (seq, events));
        self.idem_order.push_back(key);
    }

    /// Append every pending batch with `seq <= upto` to the trace. Called
    /// only after those batches are durable in the WAL.
    fn apply_pending(&mut self, upto: u64) -> io::Result<()> {
        let mut wrote = false;
        while let Some(front) = self.pending.front() {
            if front.seq > upto {
                break;
            }
            let p = self.pending.pop_front().unwrap();
            self.trace.write_all(&p.bytes)?;
            self.trace_len += p.bytes.len() as u64;
            self.applied_seq = p.seq;
            wrote = true;
        }
        if wrote {
            self.trace.flush()?;
        }
        Ok(())
    }
}

struct SyncState {
    synced_seq: u64,
    syncing: bool,
}

/// Durable, idempotent, group-committed write-ahead log. See the module
/// docs for the crash-safety argument. All methods take `&self`; the log
/// is shared across server worker threads behind an `Arc`.
pub struct Wal {
    trace_path: PathBuf,
    dir: PathBuf,
    opts: WalOptions,
    inner: Mutex<Inner>,
    sync: Mutex<SyncState>,
    synced_cv: Condvar,
    written_seq: AtomicU64,
    sync_waiters: AtomicU64,
    appends: AtomicU64,
    duplicates: AtomicU64,
    fsyncs: AtomicU64,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("trace", &self.trace_path)
            .field("dir", &self.dir)
            .field("written_seq", &self.written_seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Wal {
    /// Open (creating or recovering as needed) the WAL for `trace_path`
    /// with segments under `dir`. Repairs torn tails, re-applies durable
    /// chunks the trace is missing, unseals a footered trace, rebuilds the
    /// idempotency window and prunes stale segments.
    pub fn open(
        trace_path: &Path,
        dir: &Path,
        opts: WalOptions,
    ) -> Result<(Wal, WalOpenReport), WalError> {
        fs::create_dir_all(dir)?;
        let mut report = WalOpenReport::default();

        // -- Trace: create, scan, repair tail, unseal. --------------------
        if !trace_path.exists() {
            let mut f = File::create(trace_path)?;
            writeln!(f, "{FORMAT_V2_MAGIC}")?;
            f.sync_data()?;
        }
        let tscan = scan_stream(trace_path, false)?;
        let mut trace_len = tscan.committed;
        report.trace_unsealed = tscan.footer_at.is_some();
        report.trace_truncated_bytes = tscan.torn_bytes();
        if tscan.file_len > trace_len {
            // Drop the torn tail and/or footer in place.
            let f = OpenOptions::new().write(true).open(trace_path)?;
            f.set_len(trace_len)?;
            f.sync_data()?;
        }
        if trace_len == 0 {
            // Empty file or torn magic line: start a fresh v2 stream.
            let mut f = OpenOptions::new().write(true).open(trace_path)?;
            writeln!(f, "{FORMAT_V2_MAGIC}")?;
            f.sync_data()?;
            trace_len = fs::metadata(trace_path)?.len();
        }

        // -- Segments: scan each, repair the active tail. -----------------
        let mut segs = list_segments(dir)?;
        if segs.is_empty() {
            let path = dir.join(segment_name(1));
            let mut f = File::create(&path)?;
            writeln!(f, "{FORMAT_V2_MAGIC}")?;
            f.sync_data()?;
            fsync_dir(dir);
            segs.push((1, path));
        }
        // A crash between "create next segment" and "write its magic" can
        // leave a final empty segment: reset it.
        if let Some((_, last_path)) = segs.last() {
            if fs::metadata(last_path)?.len() == 0 {
                let mut f = OpenOptions::new().write(true).open(last_path)?;
                f.set_len(0)?;
                writeln!(f, "{FORMAT_V2_MAGIC}")?;
                f.sync_data()?;
            }
        }
        let mut chunks: Vec<(u64, Option<String>, Vec<String>)> = Vec::new();
        let mut active_scan: Option<StreamScan> = None;
        let last_index = segs.last().map(|(i, _)| *i).unwrap_or(1);
        for (idx, path) in &segs {
            let mut sscan = scan_stream(path, true)?;
            let torn = sscan.torn_bytes();
            if torn > 0 {
                if *idx != last_index {
                    return Err(WalError::Corrupt {
                        path: path.clone(),
                        line: 0,
                        reason: "sealed segment has a torn tail".to_string(),
                    });
                }
                report.wal_truncated_bytes = torn;
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(sscan.committed)?;
                f.sync_data()?;
                if sscan.committed == 0 {
                    // Torn magic line: restart the segment stream.
                    let mut f = OpenOptions::new().write(true).open(path)?;
                    writeln!(f, "{FORMAT_V2_MAGIC}")?;
                    f.sync_data()?;
                }
            }
            for c in sscan.chunks.drain(..) {
                let (seq, key, declared) = match c.marker {
                    Some(m) => m,
                    None => {
                        return Err(WalError::Corrupt {
                            path: path.clone(),
                            line: 0,
                            reason: "segment chunk without a batch marker".to_string(),
                        })
                    }
                };
                if declared != c.payload.len() as u64 {
                    return Err(WalError::Corrupt {
                        path: path.clone(),
                        line: 0,
                        reason: format!(
                            "marker declares {declared} events, chunk has {}",
                            c.payload.len()
                        ),
                    });
                }
                if let Some((prev, _, _)) = chunks.last() {
                    if seq <= *prev {
                        return Err(WalError::Corrupt {
                            path: path.clone(),
                            line: 0,
                            reason: format!("non-increasing batch seq {seq} after {prev}"),
                        });
                    }
                }
                chunks.push((seq, key, c.payload));
            }
            if *idx == last_index {
                active_scan = Some(sscan);
            }
        }
        let active_scan = active_scan.expect("at least one segment");

        // -- Reconcile: count trace chunks past the sidecar, replay the
        //    rest of the WAL into the trace. ------------------------------
        let sidecar = read_sidecar(dir)?;
        if sidecar.is_none() && !chunks.is_empty() {
            // The sidecar is written on every open; losing it while
            // segments hold batches means the directory was tampered with,
            // and guessing risks double-applying batches to the trace.
            return Err(WalError::Corrupt {
                path: dir.join(SIDECAR_NAME),
                line: 0,
                reason: "applied.ckpt missing but segments hold batches".to_string(),
            });
        }
        let (side_off, side_seq) = sidecar.unwrap_or((trace_len, 0));
        if sidecar.is_some() && side_off > tscan.committed {
            // The checkpoint claims durably-applied trace bytes that are not
            // there. The sidecar is only ever written after the trace is
            // fsynced, so this means the trace was truncated or replaced
            // outside the write plane — and the batches the checkpoint
            // covers may already be pruned from the segments. Refuse rather
            // than silently resume with acknowledged events missing.
            return Err(WalError::Corrupt {
                path: trace_path.to_path_buf(),
                line: 0,
                reason: format!(
                    "applied.ckpt records trace offset {side_off} but only {} verified byte(s) \
                     exist; the trace lost durably-applied data",
                    tscan.committed
                ),
            });
        }
        let extra_trace = tscan
            .chunks
            .iter()
            .filter(|c| c.end_offset > side_off)
            .count() as u64;
        let wal_after: Vec<&(u64, Option<String>, Vec<String>)> =
            chunks.iter().filter(|(s, _, _)| *s > side_seq).collect();
        if extra_trace > wal_after.len() as u64 {
            return Err(WalError::Corrupt {
                path: trace_path.to_path_buf(),
                line: 0,
                reason: format!(
                    "trace has {extra_trace} chunk(s) past the checkpoint but the wal only \
                     records {}; the trace was modified outside the write plane",
                    wal_after.len()
                ),
            });
        }
        let applied_seq = if extra_trace > 0 {
            wal_after[extra_trace as usize - 1].0
        } else {
            side_seq
        };
        let mut total_crc = tscan.total_crc.clone();
        let mut payload_lines = tscan.payload_lines;
        let mut node_count = tscan.node_lines;
        let mut last_time = tscan.last_time;
        let max_seq = chunks.last().map(|(s, _, _)| *s).unwrap_or(0);
        if applied_seq < max_seq {
            let mut trace = OpenOptions::new().append(true).open(trace_path)?;
            for (_, _, payload) in chunks.iter().filter(|(s, _, _)| *s > applied_seq) {
                let bytes = serialize_chunk(payload.iter().map(|s| s.as_str()));
                trace.write_all(&bytes)?;
                trace_len += bytes.len() as u64;
                for l in payload {
                    let ev = parse_event_line(l, 1).map_err(|e| WalError::Corrupt {
                        path: trace_path.to_path_buf(),
                        line: 0,
                        reason: e.to_string(),
                    })?;
                    if let RawKind::Node(_) = ev.kind {
                        node_count += 1;
                    }
                    last_time = ev.time;
                    total_crc.update(l.as_bytes());
                    total_crc.update(b"\n");
                }
                payload_lines += payload.len() as u64;
                report.replayed_chunks += 1;
                report.replayed_events += payload.len() as u64;
            }
            trace.flush()?;
            trace.sync_data()?;
        }

        // -- Idempotency window from retained markers. --------------------
        let mut idem = HashMap::new();
        let mut idem_order = VecDeque::new();
        for (seq, key, payload) in &chunks {
            if let Some(k) = key {
                if opts.idem_window > 0 {
                    while idem_order.len() >= opts.idem_window {
                        if let Some(old) = idem_order.pop_front() {
                            idem.remove(&old);
                        }
                    }
                    idem.insert(k.clone(), (*seq, payload.len() as u64));
                    idem_order.push_back(k.clone());
                }
            }
        }
        report.keys_loaded = idem.len();

        // -- Active segment handle (rotate immediately if it is sealed). --
        let (mut seg_index, mut seg_path) = segs.last().cloned().expect("segment");
        let mut seg_payload = active_scan.payload_lines;
        let mut seg_crc = active_scan.total_crc.clone();
        if active_scan.footer_at.is_some() {
            seg_index += 1;
            seg_path = dir.join(segment_name(seg_index));
            let mut f = File::create(&seg_path)?;
            writeln!(f, "{FORMAT_V2_MAGIC}")?;
            f.sync_data()?;
            fsync_dir(dir);
            seg_payload = 0;
            seg_crc = Crc32::new();
        }
        let seg = OpenOptions::new().append(true).open(&seg_path)?;
        let seg_bytes = seg.metadata()?.len();
        let trace = OpenOptions::new().append(true).open(trace_path)?;

        let next_seq = max_seq + 1;
        report.next_seq = next_seq;
        // Invariant: the sidecar never claims trace bytes that are not
        // durable. The scanned prefix may still be dirty page cache from a
        // crashed predecessor in this boot, so sync before checkpointing.
        trace.sync_data()?;
        write_sidecar(dir, trace_len, max_seq)?;

        let wal = Wal {
            trace_path: trace_path.to_path_buf(),
            dir: dir.to_path_buf(),
            opts,
            inner: Mutex::new(Inner {
                trace,
                trace_len,
                seg,
                seg_index,
                seg_bytes,
                seg_payload,
                seg_crc,
                next_seq,
                applied_seq: max_seq,
                total_crc,
                payload_lines,
                node_count,
                last_time,
                sealed: false,
                pending: VecDeque::new(),
                idem,
                idem_order,
            }),
            sync: Mutex::new(SyncState {
                synced_seq: max_seq,
                syncing: false,
            }),
            synced_cv: Condvar::new(),
            written_seq: AtomicU64::new(max_seq),
            sync_waiters: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        };
        wal.prune_segments(max_seq)?;
        report.segments = list_segments(dir)?.len();
        Ok((wal, report))
    }

    /// Open with the default directory layout (`<trace>.wal/`).
    pub fn open_default(
        trace_path: &Path,
        opts: WalOptions,
    ) -> Result<(Wal, WalOpenReport), WalError> {
        let dir = wal_dir_for(trace_path);
        Wal::open(trace_path, &dir, opts)
    }

    pub fn trace_path(&self) -> &Path {
        &self.trace_path
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appenders currently blocked on a group-commit fsync — the admission
    /// controller sheds writes when this exceeds its bound.
    pub fn sync_queue_depth(&self) -> u64 {
        self.sync_waiters.load(Ordering::Relaxed)
    }

    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            sync_waiters: self.sync_waiters.load(Ordering::Relaxed),
            last_seq: self.written_seq.load(Ordering::Relaxed),
        }
    }

    /// Append one batch. Validates against the running log state, writes
    /// marker + chunk to the active segment in one `write(2)`, group-commits
    /// the fsync, then applies the same chunk to the trace. Returns after
    /// the batch is durable; a duplicate key returns `duplicate = true`,
    /// also only once the original batch's fsync horizon is reached.
    pub fn append(&self, key: Option<&str>, events: &[WalEvent]) -> Result<WalAck, WalError> {
        if events.is_empty() {
            return Err(WalError::BadEvent {
                index: 0,
                reason: "empty batch".to_string(),
            });
        }
        if let Some(k) = key {
            validate_key(k)?;
        }
        let seq;
        {
            let mut inner = self.inner.lock().unwrap();
            if inner.sealed {
                return Err(WalError::Sealed);
            }
            if let Some(k) = key {
                if let Some(&(dup_seq, n)) = inner.idem.get(k) {
                    self.duplicates.fetch_add(1, Ordering::Relaxed);
                    drop(inner);
                    // The key is registered at write time, so the original
                    // batch may still be waiting on its group-commit fsync.
                    // A duplicate ack claims the batch is committed — block
                    // until its seq is past the durability horizon, or a
                    // retry racing the original could be acked as durable
                    // right before a crash loses both.
                    self.group_commit(dup_seq)?;
                    return Ok(WalAck {
                        seq: dup_seq,
                        events: n,
                        duplicate: true,
                    });
                }
            }
            // Validate the whole batch before writing a byte.
            let mut running = inner.last_time;
            let mut nodes = inner.node_count;
            let mut lines = Vec::with_capacity(events.len());
            for (i, e) in events.iter().enumerate() {
                if e.time < running {
                    return Err(WalError::OutOfOrder {
                        time: e.time,
                        last: running,
                    });
                }
                running = e.time;
                match e.kind {
                    WalEventKind::Node(_) => nodes += 1,
                    WalEventKind::Edge(u, v) => {
                        if u == v {
                            return Err(WalError::BadEvent {
                                index: i,
                                reason: format!("self-loop on node {u}"),
                            });
                        }
                        if u.max(v) as u64 >= nodes {
                            return Err(WalError::BadEvent {
                                index: i,
                                reason: format!(
                                    "edge endpoint {} beyond known nodes ({nodes})",
                                    u.max(v)
                                ),
                            });
                        }
                        let (a, b) = (u.min(v), u.max(v));
                        lines.push(WalEvent::edge(e.time, a, b).format_line());
                        continue;
                    }
                }
                lines.push(e.format_line());
            }

            if inner.seg_bytes >= self.opts.rotate_bytes {
                self.rotate_locked(&mut inner)?;
            }

            seq = inner.next_seq;
            inner.next_seq += 1;

            // Segment record: marker + payload + directive, one write.
            let mut rec = marker_line(seq, key, events.len() as u64).into_bytes();
            let chunk = serialize_chunk(lines.iter().map(|s| s.as_str()));
            rec.extend_from_slice(&chunk);
            inner.seg.write_all(&rec)?;
            inner.seg.flush()?;
            inner.seg_bytes += rec.len() as u64;
            inner.seg_payload += lines.len() as u64;
            for l in &lines {
                inner.seg_crc.update(l.as_bytes());
                inner.seg_crc.update(b"\n");
                inner.total_crc.update(l.as_bytes());
                inner.total_crc.update(b"\n");
            }
            inner.payload_lines += lines.len() as u64;
            inner.node_count = nodes;
            inner.last_time = running;
            inner.pending.push_back(PendingApply { seq, bytes: chunk });
            if let Some(k) = key {
                let window = self.opts.idem_window;
                inner.remember_key(k.to_string(), seq, events.len() as u64, window);
            }
            self.written_seq.store(seq, Ordering::Release);
            self.appends.fetch_add(1, Ordering::Relaxed);

            if !self.opts.fsync {
                inner.apply_pending(seq)?;
                drop(inner);
                let mut sync = self.sync.lock().unwrap();
                sync.synced_seq = sync.synced_seq.max(seq);
                drop(sync);
                self.synced_cv.notify_all();
                return Ok(WalAck {
                    seq,
                    events: events.len() as u64,
                    duplicate: false,
                });
            }
        }
        self.group_commit(seq)?;
        Ok(WalAck {
            seq,
            events: events.len() as u64,
            duplicate: false,
        })
    }

    /// Group-commit protocol: the first waiter past the synced horizon
    /// becomes the leader, fsyncs everything written so far, applies the
    /// now-durable batches to the trace, publishes the new horizon and
    /// wakes the followers.
    fn group_commit(&self, seq: u64) -> Result<(), WalError> {
        loop {
            let mut sync = self.sync.lock().unwrap();
            loop {
                if sync.synced_seq >= seq {
                    return Ok(());
                }
                if !sync.syncing {
                    sync.syncing = true;
                    break;
                }
                self.sync_waiters.fetch_add(1, Ordering::Relaxed);
                sync = self.synced_cv.wait(sync).unwrap();
                self.sync_waiters.fetch_sub(1, Ordering::Relaxed);
            }
            drop(sync);

            // Leader: capture the horizon, sync, apply, publish.
            let upto = self.written_seq.load(Ordering::Acquire);
            let result: Result<(), WalError> = (|| {
                let seg = {
                    let inner = self.inner.lock().unwrap();
                    inner.seg.try_clone()?
                };
                seg.sync_data()?;
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                let mut inner = self.inner.lock().unwrap();
                inner.apply_pending(upto)?;
                Ok(())
            })();
            let mut sync = self.sync.lock().unwrap();
            sync.syncing = false;
            if result.is_ok() {
                sync.synced_seq = sync.synced_seq.max(upto);
            }
            drop(sync);
            self.synced_cv.notify_all();
            result?;
            if self.sync.lock().unwrap().synced_seq >= seq {
                return Ok(());
            }
            // Raced with appends after our capture — loop and wait/lead
            // again (rare).
        }
    }

    /// Seal the active segment and create the next one. Caller holds the
    /// inner lock. Everything written so far is made durable first so the
    /// sealed segment can be pruned once applied.
    fn rotate_locked(&self, inner: &mut Inner) -> Result<(), WalError> {
        inner.seg.sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let upto = self.written_seq.load(Ordering::Acquire);
        inner.apply_pending(upto)?;
        // The sidecar below advances applied_seq and may unlock pruning of
        // the segments holding these batches, so the trace bytes must be
        // durable first — apply_pending only writes into page cache.
        inner.trace.sync_data()?;
        {
            let mut sync = self.sync.lock().unwrap();
            sync.synced_seq = sync.synced_seq.max(upto);
        }
        self.synced_cv.notify_all();
        let footer = format!(
            "#%end events={} crc={:08x}\n",
            inner.seg_payload,
            inner.seg_crc.clone().finalize()
        );
        inner.seg.write_all(footer.as_bytes())?;
        inner.seg.sync_data()?;
        inner.seg_index += 1;
        let path = self.dir.join(segment_name(inner.seg_index));
        let mut f = File::create(&path)?;
        writeln!(f, "{FORMAT_V2_MAGIC}")?;
        f.sync_data()?;
        fsync_dir(&self.dir);
        inner.seg = OpenOptions::new().append(true).open(&path)?;
        inner.seg_bytes = fs::metadata(&path)?.len();
        inner.seg_payload = 0;
        inner.seg_crc = Crc32::new();
        write_sidecar(&self.dir, inner.trace_len, inner.applied_seq)?;
        self.prune_segments(inner.applied_seq)?;
        Ok(())
    }

    /// Remove sealed segments beyond the retention window whose batches
    /// are all applied to the trace. Never touches the active segment.
    fn prune_segments(&self, applied_seq: u64) -> Result<(), WalError> {
        let segs = list_segments(&self.dir)?;
        if segs.len() <= self.opts.retain_segments + 1 {
            return Ok(());
        }
        let keep_from = segs.len() - (self.opts.retain_segments + 1);
        for (i, (_, path)) in segs.iter().enumerate() {
            if i >= keep_from {
                break;
            }
            // Only prune when the segment's last marker seq is applied.
            let sscan = match scan_stream(path, false) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let max_seq = sscan
                .chunks
                .iter()
                .filter_map(|c| c.marker.as_ref().map(|(s, _, _)| *s))
                .max()
                .unwrap_or(0);
            if sscan.footer_at.is_some() && max_seq <= applied_seq {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    /// Clean shutdown: drain pending applies, footer the active segment
    /// and the trace, persist the sidecar. Afterwards the trace is a
    /// strict-clean batch-readable merged log and further appends return
    /// [`WalError::Sealed`]. Call only after the live head has stopped.
    pub fn seal(&self) -> Result<(), WalError> {
        // Wait out any in-flight leader so we do not race the fsync.
        {
            let mut sync = self.sync.lock().unwrap();
            while sync.syncing {
                self.sync_waiters.fetch_add(1, Ordering::Relaxed);
                sync = self.synced_cv.wait(sync).unwrap();
                self.sync_waiters.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.sealed {
            return Ok(());
        }
        inner.sealed = true;
        inner.seg.sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let upto = self.written_seq.load(Ordering::Acquire);
        inner.apply_pending(upto)?;
        let footer = format!(
            "#%end events={} crc={:08x}\n",
            inner.seg_payload,
            inner.seg_crc.clone().finalize()
        );
        inner.seg.write_all(footer.as_bytes())?;
        inner.seg.sync_data()?;
        let tfooter = format!(
            "#%end events={} crc={:08x}\n",
            inner.payload_lines,
            inner.total_crc.clone().finalize()
        );
        inner.trace.write_all(tfooter.as_bytes())?;
        inner.trace.flush()?;
        inner.trace.sync_data()?;
        write_sidecar(&self.dir, inner.trace_len, inner.applied_seq)?;
        {
            let mut sync = self.sync.lock().unwrap();
            sync.synced_seq = sync.synced_seq.max(upto);
        }
        self.synced_cv.notify_all();
        Ok(())
    }
}

/// Serialise payload lines as one v2 chunk: every line plus the `#%chunk`
/// directive, ready for a single `write(2)`.
fn serialize_chunk<'a>(lines: impl Iterator<Item = &'a str>) -> Vec<u8> {
    let mut crc = Crc32::new();
    let mut body = String::new();
    let mut n = 0usize;
    for l in lines {
        crc.update(l.as_bytes());
        crc.update(b"\n");
        body.push_str(l);
        body.push('\n');
        n += 1;
    }
    body.push_str(&format!("#%chunk lines={n} crc={:08x}\n", crc.finalize()));
    body.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_log, read_log_with_policy, save_log_v2, RecoveryPolicy};
    use crate::log::EventLogBuilder;
    use crate::time::{NodeId, Time};
    use std::sync::Arc;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "osn-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base_log() -> crate::log::EventLog {
        let mut b = EventLogBuilder::new();
        b.add_node(Time(0), Origin::Core).unwrap();
        b.add_node(Time(10), Origin::Core).unwrap();
        b.add_edge(Time(20), NodeId(0), NodeId(1)).unwrap();
        b.build()
    }

    fn opts_nosync() -> WalOptions {
        WalOptions {
            fsync: false,
            ..WalOptions::default()
        }
    }

    fn batch_a() -> Vec<WalEvent> {
        vec![
            WalEvent::node(30, Origin::Competitor),
            WalEvent::edge(40, 1, 2),
        ]
    }

    fn batch_b() -> Vec<WalEvent> {
        vec![WalEvent::node(50, Origin::Core), WalEvent::edge(60, 0, 3)]
    }

    #[test]
    fn append_then_seal_yields_a_strict_clean_merged_trace() {
        let dir = scratch("seal");
        let trace = dir.join("t.events");
        save_log_v2(&base_log(), &trace).unwrap();
        let (wal, report) = Wal::open(&trace, &dir.join("wal"), opts_nosync()).unwrap();
        assert!(report.trace_unsealed, "save_log_v2 writes a footer");
        let a1 = wal.append(Some("k1"), &batch_a()).unwrap();
        assert_eq!((a1.seq, a1.events, a1.duplicate), (1, 2, false));
        let a2 = wal.append(None, &batch_b()).unwrap();
        assert_eq!(a2.seq, 2);
        wal.seal().unwrap();
        assert!(matches!(
            wal.append(None, &batch_b()),
            Err(WalError::Sealed)
        ));
        // Strict read succeeds: the sealed trace is a clean batch trace.
        let log = read_log(File::open(&trace).unwrap()).unwrap();
        assert_eq!(log.events().len(), 3 + 4);
        assert_eq!(log.num_nodes(), 4);
        assert_eq!(log.end_time().seconds(), 60);
    }

    #[test]
    fn reopen_after_seal_unseals_and_continues_the_sequence() {
        let dir = scratch("reopen");
        let trace = dir.join("t.events");
        save_log_v2(&base_log(), &trace).unwrap();
        let wdir = dir.join("wal");
        {
            let (wal, _) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
            wal.append(Some("k1"), &batch_a()).unwrap();
            wal.seal().unwrap();
        }
        let (wal, report) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
        assert!(report.trace_unsealed);
        assert_eq!(report.next_seq, 2);
        assert_eq!(report.keys_loaded, 1);
        let ack = wal.append(Some("k2"), &batch_b()).unwrap();
        assert_eq!(ack.seq, 2);
        wal.seal().unwrap();
        let log = read_log(File::open(&trace).unwrap()).unwrap();
        assert_eq!(log.events().len(), 7);
    }

    #[test]
    fn duplicate_key_is_deduplicated_across_reopen() {
        let dir = scratch("dedupe");
        let trace = dir.join("t.events");
        let wdir = dir.join("wal");
        let first;
        {
            let (wal, _) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
            wal.append(None, &[WalEvent::node(0, Origin::Core)])
                .unwrap();
            first = wal.append(Some("batch-7"), &batch_onto_one()).unwrap();
            let dup = wal.append(Some("batch-7"), &batch_onto_one()).unwrap();
            assert!(dup.duplicate);
            assert_eq!(dup.seq, first.seq);
        }
        // No seal: simulates a crash after the ack. Reopen and retry.
        let (wal, report) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
        assert_eq!(report.keys_loaded, 1);
        let dup = wal.append(Some("batch-7"), &batch_onto_one()).unwrap();
        assert!(dup.duplicate);
        assert_eq!(dup.seq, first.seq);
        assert_eq!(dup.events, first.events);
        wal.seal().unwrap();
        let log = read_log(File::open(&trace).unwrap()).unwrap();
        assert_eq!(log.events().len(), 3, "batch applied exactly once");
    }

    fn batch_onto_one() -> Vec<WalEvent> {
        vec![WalEvent::node(5, Origin::Core), WalEvent::edge(6, 0, 1)]
    }

    #[test]
    fn torn_segment_tail_is_truncated_and_batch_is_resendable() {
        let dir = scratch("torn");
        let trace = dir.join("t.events");
        let wdir = dir.join("wal");
        {
            let (wal, _) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
            wal.append(Some("ok"), &[WalEvent::node(0, Origin::Core)])
                .unwrap();
        }
        // Simulate kill -9 mid-write: half a marker+chunk at the tail.
        let seg = list_segments(&wdir).unwrap().pop().unwrap().1;
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(b"# batch seq=2 key=torn events=1 mark=0000\nN 10 core\n#%chu")
            .unwrap();
        drop(f);
        let (wal, report) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
        assert!(report.wal_truncated_bytes > 0);
        assert_eq!(report.next_seq, 2, "torn batch was never committed");
        let ack = wal
            .append(Some("torn"), &[WalEvent::node(10, Origin::Core)])
            .unwrap();
        assert!(!ack.duplicate);
        wal.seal().unwrap();
        let log = read_log(File::open(&trace).unwrap()).unwrap();
        assert_eq!(log.events().len(), 2);
    }

    #[test]
    fn wal_chunk_missing_from_trace_is_replayed_on_open() {
        let dir = scratch("replay");
        let trace = dir.join("t.events");
        let wdir = dir.join("wal");
        let before;
        {
            let (wal, _) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
            wal.append(None, &[WalEvent::node(0, Origin::Core)])
                .unwrap();
            before = fs::metadata(&trace).unwrap().len();
            wal.append(Some("lost"), &batch_onto_one_node()).unwrap();
        }
        // Simulate a crash between WAL fsync and trace apply: the chunk is
        // durable in the segment but missing from the trace.
        let f = OpenOptions::new().write(true).open(&trace).unwrap();
        f.set_len(before).unwrap();
        drop(f);
        let (wal, report) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
        assert_eq!(report.replayed_chunks, 1);
        assert_eq!(report.replayed_events, 2);
        let dup = wal.append(Some("lost"), &batch_onto_one_node()).unwrap();
        assert!(dup.duplicate, "replayed batch still deduplicates");
        wal.seal().unwrap();
        let log = read_log(File::open(&trace).unwrap()).unwrap();
        assert_eq!(log.events().len(), 3);
    }

    fn batch_onto_one_node() -> Vec<WalEvent> {
        vec![WalEvent::node(5, Origin::Core), WalEvent::edge(7, 0, 1)]
    }

    #[test]
    fn torn_trace_tail_is_repaired_from_the_wal() {
        let dir = scratch("torntrace");
        let trace = dir.join("t.events");
        let wdir = dir.join("wal");
        {
            let (wal, _) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
            wal.append(None, &[WalEvent::node(0, Origin::Core)])
                .unwrap();
            wal.append(Some("t2"), &batch_onto_one_node()).unwrap();
        }
        // Tear the trace mid-chunk (drop the last 10 bytes).
        let len = fs::metadata(&trace).unwrap().len();
        let f = OpenOptions::new().write(true).open(&trace).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let (wal, report) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
        assert!(report.trace_truncated_bytes > 0);
        assert_eq!(report.replayed_chunks, 1);
        wal.seal().unwrap();
        let log = read_log(File::open(&trace).unwrap()).unwrap();
        assert_eq!(log.events().len(), 3);
    }

    #[test]
    fn rotation_seals_segments_and_prunes_beyond_retention() {
        let dir = scratch("rotate");
        let trace = dir.join("t.events");
        let wdir = dir.join("wal");
        let opts = WalOptions {
            fsync: false,
            rotate_bytes: 96,
            retain_segments: 2,
            ..WalOptions::default()
        };
        let (wal, _) = Wal::open(&trace, &wdir, opts.clone()).unwrap();
        for i in 0..20u64 {
            wal.append(
                Some(&format!("k{i}")),
                &[WalEvent::node(i * 10, Origin::Core)],
            )
            .unwrap();
        }
        let segs = list_segments(&wdir).unwrap();
        assert!(
            segs.len() <= opts.retain_segments + 1,
            "pruned to retention window, got {}",
            segs.len()
        );
        assert!(segs.last().unwrap().0 >= 5, "rotated several times");
        // All but the active segment end with a verified footer.
        for (idx, path) in &segs[..segs.len() - 1] {
            let s = scan_stream(path, false).unwrap();
            assert!(s.footer_at.is_some(), "segment {idx} sealed");
        }
        // Reopen still works and the sequence continues.
        drop(wal);
        let (wal, report) = Wal::open(&trace, &wdir, opts).unwrap();
        assert_eq!(report.next_seq, 21);
        wal.append(Some("k20"), &[WalEvent::node(500, Origin::Core)])
            .unwrap();
        wal.seal().unwrap();
        let log = read_log(File::open(&trace).unwrap()).unwrap();
        assert_eq!(log.events().len(), 21);
    }

    #[test]
    fn invalid_batches_are_rejected_without_writing() {
        let dir = scratch("invalid");
        let trace = dir.join("t.events");
        let (wal, _) = Wal::open(&trace, &dir.join("wal"), opts_nosync()).unwrap();
        wal.append(None, &[WalEvent::node(100, Origin::Core)])
            .unwrap();
        assert!(matches!(
            wal.append(None, &[WalEvent::node(50, Origin::Core)]),
            Err(WalError::OutOfOrder { .. })
        ));
        assert!(matches!(
            wal.append(None, &[WalEvent::edge(100, 0, 0)]),
            Err(WalError::BadEvent { .. })
        ));
        assert!(matches!(
            wal.append(None, &[WalEvent::edge(100, 0, 9)]),
            Err(WalError::BadEvent { .. })
        ));
        assert!(matches!(
            wal.append(None, &[]),
            Err(WalError::BadEvent { .. })
        ));
        assert!(matches!(
            wal.append(Some("has space"), &[WalEvent::node(100, Origin::Core)]),
            Err(WalError::BadKey(_))
        ));
        wal.seal().unwrap();
        let log = read_log(File::open(&trace).unwrap()).unwrap();
        assert_eq!(log.events().len(), 1, "nothing extra was applied");
    }

    #[test]
    fn trace_truncated_below_checkpoint_refuses_to_open() {
        let dir = scratch("ckpt");
        let trace = dir.join("t.events");
        save_log_v2(&base_log(), &trace).unwrap();
        let wdir = dir.join("wal");
        {
            let (wal, _) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
            wal.append(Some("k1"), &batch_a()).unwrap();
            wal.seal().unwrap();
        }
        // Chop the trace below the durable checkpoint: recovery must refuse
        // rather than trust applied.ckpt and silently drop acked batches.
        let f = OpenOptions::new().write(true).open(&trace).unwrap();
        f.set_len(20).unwrap();
        drop(f);
        match Wal::open(&trace, &wdir, opts_nosync()) {
            Err(WalError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_hit_with_fsync_enabled_acks_committed_batch() {
        let dir = scratch("dupsync");
        let trace = dir.join("t.events");
        let opts = WalOptions {
            fsync: true,
            ..WalOptions::default()
        };
        let (wal, _) = Wal::open(&trace, &dir.join("wal"), opts).unwrap();
        let first = wal
            .append(Some("d1"), &[WalEvent::node(0, Origin::Core)])
            .unwrap();
        // The duplicate path goes through group_commit: it must return the
        // original ack only once that seq is durable.
        let dup = wal
            .append(Some("d1"), &[WalEvent::node(0, Origin::Core)])
            .unwrap();
        assert!(dup.duplicate);
        assert_eq!(dup.seq, first.seq);
        assert!(wal.stats().fsyncs >= 1);
        wal.seal().unwrap();
        let log = read_log(File::open(&trace).unwrap()).unwrap();
        assert_eq!(log.events().len(), 1);
    }

    #[test]
    fn midfile_segment_corruption_refuses_to_open() {
        let dir = scratch("midfile");
        let trace = dir.join("t.events");
        let wdir = dir.join("wal");
        {
            let (wal, _) = Wal::open(&trace, &wdir, opts_nosync()).unwrap();
            wal.append(Some("a"), &[WalEvent::node(0, Origin::Core)])
                .unwrap();
            wal.append(Some("b"), &[WalEvent::node(10, Origin::Core)])
                .unwrap();
        }
        let seg = list_segments(&wdir).unwrap().pop().unwrap().1;
        let mut bytes = fs::read(&seg).unwrap();
        // Flip a payload byte in the FIRST chunk: damage with later framing.
        let idx = bytes
            .windows(4)
            .position(|w| w == b"N 0 ")
            .expect("payload line present");
        bytes[idx] = b'X';
        fs::write(&seg, &bytes).unwrap();
        match Wal::open(&trace, &wdir, opts_nosync()) {
            Err(WalError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_appends_group_commit_and_all_land_once() {
        let dir = scratch("group");
        let trace = dir.join("t.events");
        let wdir = dir.join("wal");
        let opts = WalOptions {
            fsync: true,
            ..WalOptions::default()
        };
        let (wal, _) = Wal::open(&trace, &wdir, opts).unwrap();
        let wal = Arc::new(wal);
        // Seed a node so edges have endpoints.
        wal.append(None, &[WalEvent::node(0, Origin::Core)])
            .unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..4u64 {
                        let key = format!("t{t}-{i}");
                        // Same timestamp everywhere keeps ordering valid
                        // under any interleaving.
                        wal.append(Some(&key), &[WalEvent::node(100, Origin::Core)])
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.appends, 33);
        assert!(stats.fsyncs >= 1);
        assert_eq!(stats.last_seq, 33);
        wal.seal().unwrap();
        let log = read_log(File::open(&trace).unwrap()).unwrap();
        assert_eq!(log.events().len(), 33);
        assert_eq!(log.num_nodes(), 33);
    }

    #[test]
    fn unsealed_trace_reads_with_tail_policy_while_wal_is_live() {
        let dir = scratch("live");
        let trace = dir.join("t.events");
        let (wal, _) = Wal::open(&trace, &dir.join("wal"), opts_nosync()).unwrap();
        wal.append(None, &[WalEvent::node(0, Origin::Core)])
            .unwrap();
        // No footer yet: strict read fails, Skip policy succeeds.
        assert!(read_log(File::open(&trace).unwrap()).is_err());
        let (log, report) = read_log_with_policy(
            File::open(&trace).unwrap(),
            &RecoveryPolicy::Skip { max_errors: 0 },
        )
        .unwrap();
        assert_eq!(log.events().len(), 1);
        assert!(report.tail_pending());
    }

    #[test]
    fn marker_roundtrip_and_damage_detection() {
        let m = marker_line(7, Some("abc-123"), 42);
        let t = m.trim();
        assert_eq!(parse_marker(t), Some((7, Some("abc-123".to_string()), 42)));
        let m2 = marker_line(9, None, 1);
        assert_eq!(parse_marker(m2.trim()), Some((9, None, 1)));
        // Any flipped byte kills the mark CRC → treated as plain comment.
        let damaged = t.replace("seq=7", "seq=8");
        assert_eq!(parse_marker(&damaged), None);
        assert_eq!(parse_marker("# just a comment"), None);
    }

    #[test]
    fn wal_dir_for_appends_extension() {
        assert_eq!(
            wal_dir_for(Path::new("/x/t.events")),
            PathBuf::from("/x/t.events.wal")
        );
    }
}
