//! Property-based tests for the graph substrate.

use osn_graph::io::{read_log, write_log};
use osn_graph::{CsrGraph, EventLogBuilder, NodeId, Origin, Time, UnionFind};
use proptest::prelude::*;

/// Strategy: a random sequence of (time-increment, op) forming a valid
/// event schedule.
fn ops_strategy() -> impl Strategy<Value = Vec<(u64, Option<(u8, u8)>)>> {
    prop::collection::vec(
        (0u64..5_000, prop::option::of((any::<u8>(), any::<u8>()))),
        1..120,
    )
}

proptest! {
    /// The builder only ever produces logs satisfying its invariants,
    /// regardless of the op sequence thrown at it (invalid ops error
    /// without corrupting state).
    #[test]
    fn builder_invariants_hold(ops in ops_strategy()) {
        let mut b = EventLogBuilder::new();
        let mut t = 0u64;
        let mut edges_accepted = 0u64;
        for (dt, op) in ops {
            t += dt;
            match op {
                None => {
                    b.add_node(Time(t), Origin::Core).unwrap();
                }
                Some((x, y)) => {
                    let n = b.num_nodes();
                    if n == 0 {
                        continue;
                    }
                    let u = NodeId(x as u32 % n);
                    let v = NodeId(y as u32 % n);
                    if b.add_edge(Time(t), u, v).is_ok() {
                        edges_accepted += 1;
                    }
                }
            }
        }
        let log = b.build();
        prop_assert_eq!(log.num_edges(), edges_accepted);
        // time-sorted
        for w in log.events().windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        // no duplicate edges, no self-loops
        let mut seen = std::collections::HashSet::new();
        for (_, u, v) in log.edge_events() {
            prop_assert!(u != v);
            prop_assert!(seen.insert((u, v)), "duplicate edge {u:?}-{v:?}");
        }
        // io round-trip is lossless
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(&buf[..]).unwrap();
        prop_assert_eq!(back.events().len(), log.events().len());
        prop_assert_eq!(back.num_edges(), log.num_edges());
    }

    /// CSR construction from any edge set preserves degrees and
    /// symmetric adjacency.
    #[test]
    fn csr_is_symmetric(edges in prop::collection::vec((0u32..40, 0u32..40), 0..120)) {
        // sanitise: drop self-loops and duplicates
        let mut set = std::collections::HashSet::new();
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .filter(|e| set.insert(*e))
            .collect();
        let g = CsrGraph::from_edges(40, &edges);
        prop_assert_eq!(g.num_edges(), edges.len() as u64);
        for u in 0..40u32 {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "asymmetric edge {u}-{v}");
            }
            // sorted, unique
            let n = g.neighbors(u);
            prop_assert!(n.windows(2).all(|w| w[0] < w[1]));
        }
        let degree_sum: usize = (0..40u32).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum as u64, 2 * g.num_edges());
    }

    /// Union-find: set sizes always partition the universe; connectivity
    /// is transitive and symmetric.
    #[test]
    fn unionfind_partitions(pairs in prop::collection::vec((0u32..30, 0u32..30), 0..60)) {
        let mut uf = UnionFind::new(30);
        for &(a, b) in &pairs {
            uf.union(a, b);
        }
        // sizes partition
        let mut total = 0u32;
        let mut reps = std::collections::HashSet::new();
        for x in 0..30 {
            let r = uf.find(x);
            if reps.insert(r) {
                total += uf.set_size(x);
            }
        }
        prop_assert_eq!(total, 30);
        prop_assert_eq!(reps.len(), uf.num_sets());
        // symmetry & transitivity through the union history
        for &(a, b) in &pairs {
            prop_assert!(uf.connected(a, b));
            prop_assert!(uf.connected(b, a));
        }
    }

    /// Time arithmetic: day indexing is consistent with day bounds.
    #[test]
    fn time_day_consistency(secs in 0u64..10_000_000_000) {
        let t = Time(secs);
        let d = t.day();
        prop_assert!(Time::day_start(d) <= t);
        prop_assert!(t < Time::day_end(d));
        prop_assert!((t.as_days_f64() - d as f64) < 1.0 + 1e-9);
    }
}
