//! Fault-injection tests: the trace pipeline against misbehaving storage.
//!
//! Every test drives the real readers/writers through [`ChaosReader`] /
//! [`ChaosWriter`] from `osn_graph::testutil`, so the failure schedules are
//! deterministic and replayable by seed.

use osn_graph::atomicfile::{tmp_path, write_atomic};
use osn_graph::io::{read_log, read_log_with_policy, write_log_v2, RecoveryPolicy};
use osn_graph::testutil::{ChaosReader, ChaosReaderConfig, ChaosWriter, ChaosWriterConfig};
use osn_graph::{EventLog, EventLogBuilder, NodeId, Origin, Time};
use proptest::prelude::*;
use std::io::Write as _;

/// A small but non-trivial valid log: a growing ring with chords.
fn sample_log(nodes: u32) -> EventLog {
    let mut b = EventLogBuilder::new();
    let mut t = 0u64;
    for i in 0..nodes {
        t += 500;
        b.add_node(Time(t), Origin::Core).unwrap();
        if i > 0 {
            t += 50;
            b.add_edge(Time(t), NodeId(i - 1), NodeId(i)).unwrap();
        }
        if i >= 5 && i % 3 == 0 {
            t += 50;
            b.add_edge(Time(t), NodeId(i - 5), NodeId(i)).unwrap();
        }
    }
    b.build()
}

fn v2_bytes(log: &EventLog) -> Vec<u8> {
    let mut buf = Vec::new();
    write_log_v2(log, &mut buf).unwrap();
    buf
}

#[test]
fn flaky_reader_parses_v2_unchanged() {
    let log = sample_log(60);
    let bytes = v2_bytes(&log);
    for seed in 0..8 {
        let reader = ChaosReader::new(&bytes[..], seed, ChaosReaderConfig::flaky());
        let back = read_log(reader).expect("EINTR and short reads must be survivable");
        assert_eq!(back.events().len(), log.events().len(), "seed {seed}");
        assert_eq!(back.fingerprint(), log.fingerprint(), "seed {seed}");
    }
}

#[test]
fn bit_corruption_detected_under_strict() {
    let log = sample_log(60);
    let bytes = v2_bytes(&log);
    let mut detected = 0;
    for seed in 0..16 {
        // Short reads multiply the number of read calls so the per-call
        // corruption probability actually fires a few times per replay.
        let cfg = ChaosReaderConfig {
            corrupt_one_in: 8,
            short_read_max: 32,
            ..ChaosReaderConfig::default()
        };
        let reader = ChaosReader::new(&bytes[..], seed, cfg.clone());
        if read_log(reader).is_err() {
            detected += 1;
        } else {
            // A flip may land in a comment byte or miss every read; the
            // strict reader must still never return a log that differs
            // from the original without erroring.
            let reader = ChaosReader::new(&bytes[..], seed, cfg);
            let back = read_log(reader).unwrap();
            assert_eq!(back.fingerprint(), log.fingerprint(), "seed {seed}");
        }
    }
    assert!(
        detected >= 8,
        "checksums should catch most corrupted replays, caught {detected}/16"
    );
}

#[test]
fn bit_corruption_recovered_under_skip_and_repair() {
    let log = sample_log(60);
    let bytes = v2_bytes(&log);
    for seed in 0..16 {
        for policy in [
            RecoveryPolicy::Skip {
                max_errors: usize::MAX,
            },
            RecoveryPolicy::Repair { window: 86_400 },
        ] {
            let cfg = ChaosReaderConfig {
                corrupt_one_in: 8,
                short_read_max: 32,
                ..ChaosReaderConfig::default()
            };
            let reader = ChaosReader::new(&bytes[..], seed, cfg);
            let (back, report) = read_log_with_policy(reader, &policy)
                .expect("recovery policies must not abort on corruption");
            assert!(
                back.events().len() <= log.events().len(),
                "recovery must never invent events"
            );
            if back.events().len() < log.events().len() {
                assert!(
                    !report.is_clean(),
                    "dropped events must be reported (seed {seed}, {policy:?})"
                );
            }
        }
    }
}

#[test]
fn truncated_stream_rejected_strict_recovered_repair() {
    let log = sample_log(60);
    let bytes = v2_bytes(&log);
    let cut = bytes.len() / 2;
    let cfg = ChaosReaderConfig {
        truncate_at: Some(cut as u64),
        ..ChaosReaderConfig::default()
    };
    let reader = ChaosReader::new(&bytes[..], 1, cfg.clone());
    assert!(
        read_log(reader).is_err(),
        "strict must reject a truncated stream"
    );

    let reader = ChaosReader::new(&bytes[..], 1, cfg);
    let (back, report) =
        read_log_with_policy(reader, &RecoveryPolicy::Repair { window: 86_400 }).unwrap();
    assert!(report.truncated, "truncation must be reported");
    assert!(!report.is_clean());
    assert!(back.events().len() < log.events().len());
    // Whatever survived is still a valid time-sorted log.
    for w in back.events().windows(2) {
        assert!(w[0].time <= w[1].time);
    }
}

#[test]
fn chaos_writer_failure_surfaces_and_atomic_write_keeps_destination() {
    let log = sample_log(60);
    // Direct serialization into a failing writer must surface the error,
    // not panic or silently truncate.
    let mut sink = Vec::new();
    let mut w = ChaosWriter::new(
        &mut sink,
        5,
        ChaosWriterConfig {
            interrupt_one_in: 4,
            short_write_max: 13,
            fail_after: Some(700),
        },
    );
    let err = write_log_v2(&log, &mut w).unwrap_err();
    assert!(err.to_string().contains("disk full"), "{err}");

    // The same failure inside an atomic write leaves the previous
    // destination byte-identical and no tmp file behind.
    let dir = std::env::temp_dir().join("osn_failure_modes");
    std::fs::create_dir_all(&dir).unwrap();
    let dest = dir.join("trace.events");
    let good = v2_bytes(&log);
    std::fs::write(&dest, &good).unwrap();
    let err = write_atomic(&dest, |w| {
        let mut cw = ChaosWriter::new(
            w,
            5,
            ChaosWriterConfig {
                fail_after: Some(700),
                ..ChaosWriterConfig::default()
            },
        );
        loop {
            match cw.write(b"partial payload that will never finish\n") {
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    })
    .unwrap_err();
    assert!(err.to_string().contains("disk full"), "{err}");
    assert_eq!(
        std::fs::read(&dest).unwrap(),
        good,
        "a failed atomic write must not touch the destination"
    );
    assert!(!tmp_path(&dest).exists(), "tmp file must be cleaned up");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupt_storm_never_loses_or_duplicates_events() {
    let log = sample_log(120);
    let bytes = v2_bytes(&log);
    let cfg = ChaosReaderConfig {
        interrupt_one_in: 2, // every other read call fails with EINTR
        short_read_max: 3,
        ..ChaosReaderConfig::default()
    };
    let reader = ChaosReader::new(&bytes[..], 99, cfg);
    let back = read_log(reader).unwrap();
    assert_eq!(back.fingerprint(), log.fingerprint());
}

proptest! {
    /// Every byte-truncated prefix of a valid v2 trace (cut anywhere after
    /// the format magic and before the final byte) is rejected under
    /// Strict, and recovered-with-report under Repair.
    ///
    /// Prefixes shorter than the magic line are indistinguishable from a
    /// (possibly empty) v1 comment stream, so the guarantee starts at the
    /// first byte that commits the stream to v2 framing.
    #[test]
    fn truncated_prefixes_strict_rejects_repair_reports(
        nodes in 2u32..40,
        frac in 0.0f64..1.0,
    ) {
        let log = sample_log(nodes);
        let bytes = v2_bytes(&log);
        let magic_len = "#%osn-events v2".len();
        prop_assert!(bytes.len() > magic_len + 1);
        // Cut in [magic_len, len - 2]: the last byte is the footer's
        // newline, and dropping only it leaves a complete trace.
        let span = bytes.len() - 1 - magic_len;
        let cut = magic_len + ((frac * span as f64) as usize).min(span - 1);
        let prefix = &bytes[..cut];

        prop_assert!(
            read_log(prefix).is_err(),
            "strict accepted a {cut}-byte prefix of a {}-byte trace",
            bytes.len()
        );

        let (back, report) =
            read_log_with_policy(prefix, &RecoveryPolicy::Repair { window: 86_400 })
                .expect("repair must not abort on truncation");
        prop_assert!(!report.is_clean(), "truncation at {cut} went unreported");
        prop_assert!(back.events().len() <= log.events().len());
        for w in back.events().windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
    }

    /// Under an arbitrary chaos plan (interrupts, short reads, corruption,
    /// truncation), no policy ever panics, and Skip/Repair never invent
    /// events that were not in the original trace.
    #[test]
    fn chaos_never_panics_or_invents_events(
        seed in 0u64..1_000,
        interrupt in 0u32..5,
        short in 0usize..9,
        corrupt in 0u32..30,
        trunc_frac in 0.0f64..1.2,
    ) {
        // interrupt_one_in == 1 would mean "every read is EINTR" and the
        // (correct) retry loop could never make progress — remap it.
        let interrupt = if interrupt == 1 { 2 } else { interrupt };
        let log = sample_log(30);
        let bytes = v2_bytes(&log);
        let truncate_at = if trunc_frac < 1.0 {
            Some((bytes.len() as f64 * trunc_frac) as u64)
        } else {
            None
        };
        let cfg = ChaosReaderConfig {
            interrupt_one_in: interrupt,
            short_read_max: short,
            corrupt_one_in: corrupt,
            truncate_at,
        };
        for policy in [
            RecoveryPolicy::Strict,
            RecoveryPolicy::Skip { max_errors: 5 },
            RecoveryPolicy::Repair { window: 3_600 },
        ] {
            let reader = ChaosReader::new(&bytes[..], seed, cfg.clone());
            if let Ok((back, _report)) = read_log_with_policy(reader, &policy) {
                prop_assert!(
                    back.events().len() <= log.events().len(),
                    "{policy:?} returned more events than were written"
                );
            }
        }
    }
}
