//! Destination selection: preferential attachment pools.
//!
//! A [`Pool`] holds the member nodes of one attachable population (the
//! core network, the competitor, or post-merge arrivals) together with an
//! edge-endpoint multiset. Drawing an endpoint uniformly from that
//! multiset samples nodes proportionally to degree — classic linear
//! preferential attachment without any tree or bucket structure.
//!
//! The generator mixes three draw modes whose weights drift as the
//! network grows, which is what produces the paper's decaying attachment
//! exponent α(t) (Figure 3c):
//!
//! * **super-linear**: take two PA draws and keep the higher-degree one
//!   (biases beyond linear PA; dominates early, weight → 0);
//! * **linear PA**: one endpoint draw;
//! * **uniform**: a uniformly random member (weight grows over time —
//!   "supernodes become hard to find in a massive network").

use crate::config::BehaviorConfig;
use rand::Rng;

/// One attachable population.
#[derive(Debug, Clone, Default)]
pub struct Pool {
    nodes: Vec<u32>,
    endpoints: Vec<u32>,
}

impl Pool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a member.
    pub fn add_node(&mut self, node: u32) {
        self.nodes.push(node);
    }

    /// Register an edge endpoint (call once per endpoint per edge).
    pub fn add_endpoint(&mut self, node: u32) {
        self.endpoints.push(node);
    }

    /// Number of members.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of recorded endpoints (= 2 × intra-pool edges + cross-pool
    /// endpoints charged to this pool).
    pub fn num_endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// Uniform member draw.
    pub fn draw_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(self.nodes[rng.gen_range(0..self.nodes.len())])
        }
    }

    /// Linear-PA draw (endpoint multiset); falls back to uniform while the
    /// pool has no edges yet.
    pub fn draw_pa<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        if self.endpoints.is_empty() {
            self.draw_uniform(rng)
        } else {
            Some(self.endpoints[rng.gen_range(0..self.endpoints.len())])
        }
    }

    /// Mixture draw: super-linear with probability `super_p`, uniform with
    /// probability `uniform_p`, linear PA otherwise. `degree` resolves a
    /// node's current degree for the super-linear comparison.
    pub fn draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        super_p: f64,
        uniform_p: f64,
        degree: &dyn Fn(u32) -> usize,
    ) -> Option<u32> {
        let roll: f64 = rng.gen();
        if roll < super_p {
            let a = self.draw_pa(rng)?;
            let b = self.draw_pa(rng)?;
            Some(if degree(a) >= degree(b) { a } else { b })
        } else if roll < super_p + uniform_p {
            self.draw_uniform(rng)
        } else {
            self.draw_pa(rng)
        }
    }
}

/// Mixture weights `(super_p, uniform_p)` at growth progress
/// `progress ∈ [0, 1]` (fraction of final nodes already present).
///
/// Super-linear weight decays quadratically from
/// [`BehaviorConfig::super_linear_start`] to zero; uniform weight rises
/// from `uniform_start` to `uniform_end` on a square-root ramp (fast
/// early movement, settling later — mirroring how quickly α(t) falls in
/// the paper's Figure 3c before flattening).
pub fn mixture_weights(cfg: &BehaviorConfig, progress: f64) -> (f64, f64) {
    let p = progress.clamp(0.0, 1.0);
    let super_p = cfg.super_linear_start * (1.0 - p).powi(3);
    let uniform_p = cfg.uniform_start + (cfg.uniform_end - cfg.uniform_start) * p.powf(1.25);
    (super_p, uniform_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_stats::rng_from_seed;

    #[test]
    fn empty_pool_draws_nothing() {
        let p = Pool::new();
        let mut rng = rng_from_seed(1);
        assert_eq!(p.draw_uniform(&mut rng), None);
        assert_eq!(p.draw_pa(&mut rng), None);
    }

    #[test]
    fn pa_falls_back_to_uniform_without_edges() {
        let mut p = Pool::new();
        p.add_node(3);
        let mut rng = rng_from_seed(1);
        assert_eq!(p.draw_pa(&mut rng), Some(3));
    }

    #[test]
    fn pa_prefers_high_degree() {
        let mut p = Pool::new();
        for n in 0..10 {
            p.add_node(n);
        }
        // node 0 has degree 9 (star centre), others degree 1
        for n in 1..10 {
            p.add_endpoint(0);
            p.add_endpoint(n);
        }
        let mut rng = rng_from_seed(2);
        let mut zero = 0;
        for _ in 0..2000 {
            if p.draw_pa(&mut rng) == Some(0) {
                zero += 1;
            }
        }
        // Expect ≈ half the draws.
        assert!(zero > 800 && zero < 1200, "zero drawn {zero}");
    }

    #[test]
    fn super_linear_beats_linear() {
        let mut p = Pool::new();
        for n in 0..10 {
            p.add_node(n);
        }
        for n in 1..10 {
            p.add_endpoint(0);
            p.add_endpoint(n);
        }
        let degree = |n: u32| if n == 0 { 9 } else { 1 };
        let mut rng = rng_from_seed(3);
        let mut zero = 0;
        for _ in 0..2000 {
            if p.draw(&mut rng, 1.0, 0.0, &degree) == Some(0) {
                zero += 1;
            }
        }
        // P(max of two draws is the hub) = 1 − 0.25 = 0.75.
        assert!(zero > 1350 && zero < 1650, "zero drawn {zero}");
    }

    #[test]
    fn uniform_mode_ignores_degree() {
        let mut p = Pool::new();
        for n in 0..10 {
            p.add_node(n);
        }
        for n in 1..10 {
            p.add_endpoint(0);
            p.add_endpoint(n);
        }
        let degree = |_: u32| 1usize;
        let mut rng = rng_from_seed(4);
        let mut zero = 0;
        for _ in 0..2000 {
            if p.draw(&mut rng, 0.0, 1.0, &degree) == Some(0) {
                zero += 1;
            }
        }
        // uniform over 10 nodes → ≈200 hits
        assert!(zero > 120 && zero < 300, "zero drawn {zero}");
    }

    #[test]
    fn weights_decay_and_rise() {
        let cfg = BehaviorConfig::default();
        let (s0, u0) = mixture_weights(&cfg, 0.0);
        let (s1, u1) = mixture_weights(&cfg, 1.0);
        assert!((s0 - cfg.super_linear_start).abs() < 1e-12);
        assert_eq!(s1, 0.0);
        assert!((u0 - cfg.uniform_start).abs() < 1e-12);
        assert!((u1 - cfg.uniform_end).abs() < 1e-12);
        // monotone directions at midpoints
        let (sm, um) = mixture_weights(&cfg, 0.5);
        assert!(sm < s0 && sm > s1);
        assert!(um > u0 && um < u1);
        // weights always form a valid mixture
        for i in 0..=10 {
            let (s, u) = mixture_weights(&cfg, i as f64 / 10.0);
            assert!(s >= 0.0 && u >= 0.0 && s + u <= 1.0);
        }
    }
}
