//! Arrival schedules.
//!
//! Converts a [`crate::config::GrowthConfig`] into concrete
//! per-day arrival counts. The cumulative target is
//! `N(d) = N0 · (Nf/N0)^((d/D)^β)`; daily arrivals are the increments of
//! that curve, modulated by dip/surge windows and log-normal jitter, with
//! a fractional accumulator so rounding never loses users.

use crate::config::GrowthConfig;
use osn_stats::sampling::rng_from_seed;
use rand::Rng;

/// Materialised per-day arrival counts for one network.
#[derive(Debug, Clone)]
pub struct GrowthSchedule {
    arrivals: Vec<u32>,
}

impl GrowthSchedule {
    /// Build the schedule for `days` days.
    ///
    /// `day_offset` shifts the curve (used for the competitor network,
    /// which starts mid-trace); dips are indexed by *absolute* day.
    pub fn build(cfg: &GrowthConfig, days: u32, day_offset: u32, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let n0 = cfg.initial_nodes.max(1) as f64;
        let nf = cfg.final_nodes as f64;
        let d_total = days.max(1) as f64;
        let cumulative = |d: f64| -> f64 {
            if d <= 0.0 {
                return n0;
            }
            let frac = (d / d_total).min(1.0);
            n0 * (nf / n0).powf(frac.powf(cfg.beta))
        };
        let mut arrivals = Vec::with_capacity(days as usize);
        let mut carry = 0.0f64;
        for day in 0..days {
            let raw = cumulative(day as f64 + 1.0) - cumulative(day as f64);
            let mut x = raw;
            let abs_day = day + day_offset;
            for w in &cfg.dips {
                if w.contains(abs_day) {
                    x *= w.factor;
                }
            }
            if cfg.daily_jitter > 0.0 {
                // log-normal multiplicative jitter with σ = daily_jitter
                let gauss = sample_standard_normal(&mut rng);
                x *= (cfg.daily_jitter * gauss).exp();
            }
            x += carry;
            let whole = x.floor().max(0.0);
            carry = x - whole;
            arrivals.push(whole as u32);
        }
        GrowthSchedule { arrivals }
    }

    /// Arrivals on relative day `d` (0 beyond the schedule).
    pub fn arrivals_on(&self, d: u32) -> u32 {
        self.arrivals.get(d as usize).copied().unwrap_or(0)
    }

    /// Total scheduled arrivals.
    pub fn total(&self) -> u64 {
        self.arrivals.iter().map(|&a| a as u64).sum()
    }

    /// Number of scheduled days.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True if no days are scheduled.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// Box–Muller standard normal.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DipWindow;

    fn plain_cfg(final_nodes: u32) -> GrowthConfig {
        GrowthConfig {
            initial_nodes: 2,
            final_nodes,
            beta: 0.6,
            dips: vec![],
            daily_jitter: 0.0,
        }
    }

    #[test]
    fn total_close_to_target() {
        let cfg = plain_cfg(10_000);
        let s = GrowthSchedule::build(&cfg, 500, 0, 1);
        let total = s.total();
        // total arrivals ≈ final − initial
        assert!(
            (total as i64 - 9_998).abs() <= 2,
            "total {total} too far from target"
        );
    }

    #[test]
    fn growth_accelerates_in_absolute_terms() {
        let cfg = plain_cfg(50_000);
        let s = GrowthSchedule::build(&cfg, 700, 0, 1);
        let early: u64 = (0..100).map(|d| s.arrivals_on(d) as u64).sum();
        let late: u64 = (600..700).map(|d| s.arrivals_on(d) as u64).sum();
        assert!(late > early * 5, "late {late} vs early {early}");
    }

    #[test]
    fn relative_growth_decelerates() {
        let cfg = plain_cfg(50_000);
        let s = GrowthSchedule::build(&cfg, 700, 0, 1);
        let mut n = cfg.initial_nodes as f64;
        let mut rel = Vec::new();
        for d in 0..700 {
            let a = s.arrivals_on(d) as f64;
            rel.push(a / n);
            n += a;
        }
        let early_rel: f64 = rel[5..50].iter().sum::<f64>() / 45.0;
        let late_rel: f64 = rel[600..690].iter().sum::<f64>() / 90.0;
        assert!(
            early_rel > late_rel * 3.0,
            "early {early_rel} late {late_rel}"
        );
    }

    #[test]
    fn dips_suppress_arrivals() {
        let mut cfg = plain_cfg(20_000);
        cfg.dips = vec![DipWindow {
            start_day: 300,
            len: 10,
            factor: 0.2,
        }];
        let dipped = GrowthSchedule::build(&cfg, 500, 0, 1);
        cfg.dips.clear();
        let plain = GrowthSchedule::build(&cfg, 500, 0, 1);
        let dip_sum: u64 = (300..310).map(|d| dipped.arrivals_on(d) as u64).sum();
        let plain_sum: u64 = (300..310).map(|d| plain.arrivals_on(d) as u64).sum();
        assert!((dip_sum as f64) < plain_sum as f64 * 0.3);
    }

    #[test]
    fn offset_shifts_dip_indexing() {
        let mut cfg = plain_cfg(5_000);
        cfg.dips = vec![DipWindow {
            start_day: 100,
            len: 10,
            factor: 0.0,
        }];
        // Relative day 0 with offset 100 is absolute day 100: zeroed out.
        let s = GrowthSchedule::build(&cfg, 50, 100, 1);
        for d in 0..10 {
            assert_eq!(s.arrivals_on(d), 0);
        }
        assert!(s.arrivals_on(20) > 0);
    }

    #[test]
    fn deterministic_with_jitter() {
        let mut cfg = plain_cfg(10_000);
        cfg.daily_jitter = 0.1;
        let a = GrowthSchedule::build(&cfg, 300, 0, 9);
        let b = GrowthSchedule::build(&cfg, 300, 0, 9);
        assert_eq!(a.arrivals, b.arrivals);
        let c = GrowthSchedule::build(&cfg, 300, 0, 10);
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn out_of_range_is_zero() {
        let s = GrowthSchedule::build(&plain_cfg(100), 10, 0, 1);
        assert_eq!(s.arrivals_on(99), 0);
        assert_eq!(s.len(), 10);
    }
}
