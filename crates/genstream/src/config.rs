//! Generator configuration.
//!
//! All knobs are plain data (serde-derived) so configurations can be
//! recorded next to generated traces. The defaults are calibrated to the
//! shape of the Renren trace scaled to laptop size; `TraceConfig::small`
//! and `TraceConfig::tiny` shrink it for tests and examples.

use serde::{Deserialize, Serialize};

/// A multiplicative modulation window on daily arrivals (holiday dips
/// below 1.0, publicity surges above 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DipWindow {
    /// First affected day.
    pub start_day: u32,
    /// Number of affected days.
    pub len: u32,
    /// Multiplier applied to arrivals within the window.
    pub factor: f64,
}

impl DipWindow {
    /// Does `day` fall inside this window?
    pub fn contains(&self, day: u32) -> bool {
        day >= self.start_day && day < self.start_day + self.len
    }
}

/// Node-arrival schedule parameters.
///
/// The target cumulative curve is `N(d) = N0 · (Nf/N0)^((d/D)^beta)`:
/// with `beta < 1` the *relative* daily growth is large early and settles
/// later, matching Figure 1(b). Renren's real curve passes ≈3% of its
/// final size on merge day 386; `beta ≈ 0.6` reproduces that fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthConfig {
    /// Nodes present on day 0.
    pub initial_nodes: u32,
    /// Nodes at the end of the trace (core network).
    pub final_nodes: u32,
    /// Curvature of the cumulative growth curve (0 < beta ≤ 1).
    pub beta: f64,
    /// Holiday dips / publicity surges.
    pub dips: Vec<DipWindow>,
    /// Multiplicative log-normal jitter σ on daily arrivals (0 disables).
    pub daily_jitter: f64,
}

impl GrowthConfig {
    /// The paper-shaped default windows: two Lunar New Year dips, two
    /// summer-vacation dips, one publicity surge around day 305.
    pub fn paper_windows() -> Vec<DipWindow> {
        vec![
            DipWindow {
                start_day: 56,
                len: 14,
                factor: 0.35,
            },
            DipWindow {
                start_day: 222,
                len: 60,
                factor: 0.5,
            },
            DipWindow {
                start_day: 305,
                len: 40,
                factor: 2.2,
            },
            DipWindow {
                start_day: 432,
                len: 14,
                factor: 0.35,
            },
            DipWindow {
                start_day: 587,
                len: 60,
                factor: 0.5,
            },
        ]
    }
}

/// Per-node behaviour parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorConfig {
    /// Pareto scale of the lifetime edge budget.
    pub budget_xm: f64,
    /// Pareto shape of the lifetime edge budget (smaller = heavier tail).
    pub budget_alpha: f64,
    /// Default friend cap (paper: 1000).
    pub friend_cap: u32,
    /// Fraction of users with the raised cap (paper: "negligibly small").
    pub raised_cap_fraction: f64,
    /// The raised cap (paper: 2000).
    pub raised_cap: u32,
    /// Max edges created immediately on arrival (offline friends found at
    /// sign-up).
    pub initial_edges_max: u32,
    /// Pareto shape of inter-edge gaps (paper measures 1.8–2.5).
    pub gap_alpha: f64,
    /// Base Pareto scale of inter-edge gaps, in days.
    pub gap_xm_days: f64,
    /// Gap scale multiplier per day of account age (front-loads activity).
    pub gap_aging_per_day: f64,
    /// Probability an edge is created by triadic closure.
    pub triadic_prob: f64,
    /// Early extra super-linear PA share (decays to 0 with growth).
    pub super_linear_start: f64,
    /// Uniform-random destination share at the start of the trace.
    pub uniform_start: f64,
    /// Uniform-random destination share at the end of the trace.
    pub uniform_end: f64,
    /// Probability a new user founds a new affinity group (school
    /// cohort). Otherwise they join an existing group with probability
    /// proportional to its size, which yields the power-law community
    /// sizes of Figure 4(c)/5(a).
    pub group_new_prob: f64,
    /// Probability a new user joins no group at all ("stand-alone"
    /// users — the paper's non-community population of Figure 7).
    pub solo_prob: f64,
    /// Probability a (grouped) user's edge targets their own group.
    pub local_prob: f64,
    /// Budget multiplier for solo users (they are less engaged).
    pub solo_budget_scale: f64,
    /// Inter-edge gap multiplier for solo users (they are slower).
    pub solo_gap_mult: f64,
    /// Uniform-draw share used for within-group destination picks
    /// (floor; the progress-based global uniform share applies when
    /// larger, so attachment randomises inside groups too as the network
    /// matures).
    pub group_uniform: f64,
    /// Maximum members per affinity group (school cohorts are bounded);
    /// 0 disables the cap.
    pub group_size_cap: u32,
    /// Degree-saturation scale: a candidate with degree `d` accepts a new
    /// friendship with probability `(1 + d/saturation)^-receive_exponent`.
    /// Popular users accept proportionally fewer of the requests aimed at
    /// them, which is what bends preferential attachment sublinear as the
    /// network matures (the paper's decaying α of Figure 3c).
    pub receive_saturation: f64,
    /// Exponent of the saturation law (0 disables saturation).
    pub receive_exponent: f64,
    /// Probability a new group is founded in a brand-new *region*
    /// (university/city). Otherwise the region is picked proportionally
    /// to its group count. Regions concentrate inter-group edges, so
    /// when Louvain absorbs a community it absorbs it into the community
    /// it shares the most edges with (Figure 6c's strongest-tie rule).
    pub region_new_prob: f64,
    /// Probability a grouped user's edge targets their own region
    /// (evaluated after the own-group roll fails).
    pub region_prob: f64,
    /// Probability a budget-exhausted (dormant) account still accepts an
    /// incoming friendship. Real lapsed accounts stop generating *and*
    /// receiving edges, which is what makes the paper's active-user
    /// curves (Figure 8a–b) decline over time.
    pub dormant_receive_prob: f64,
    /// E-folding time (days) of cohort cohesion: as a group ages, its
    /// members' new edges drift from the group to the region, dissolving
    /// old cohorts into their regional community. This is what makes
    /// dying communities merge along their strongest tie (Figure 6c) and
    /// keeps community-level churn high (Figure 5c).
    pub group_age_tau_days: f64,
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        BehaviorConfig {
            budget_xm: 7.0,
            budget_alpha: 1.5,
            friend_cap: 1000,
            raised_cap_fraction: 0.01,
            raised_cap: 2000,
            initial_edges_max: 1,
            gap_alpha: 2.0,
            gap_xm_days: 0.8,
            gap_aging_per_day: 0.02,
            triadic_prob: 0.25,
            super_linear_start: 0.6,
            uniform_start: 0.05,
            uniform_end: 0.80,
            group_new_prob: 0.03,
            solo_prob: 0.20,
            local_prob: 0.50,
            solo_budget_scale: 0.4,
            solo_gap_mult: 2.5,
            group_uniform: 0.10,
            group_size_cap: 3_500,
            receive_saturation: 80.0,
            receive_exponent: 0.4,
            region_new_prob: 0.09,
            region_prob: 0.30,
            dormant_receive_prob: 0.15,
            group_age_tau_days: 280.0,
        }
    }
}

/// Two-network merge parameters (the Renren/5Q event).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeConfig {
    /// Day the competitor network opens (5Q: ≈ day 135).
    pub competitor_start_day: u32,
    /// Merge day (Renren/5Q: day 386).
    pub merge_day: u32,
    /// Competitor size at merge relative to the core network at merge
    /// (5Q/Xiaonei: 670K/624K ≈ 1.07).
    pub competitor_size_ratio: f64,
    /// Competitor edge-budget multiplier (5Q was much sparser: 3M edges
    /// vs 8.2M on a similar user count).
    pub competitor_budget_scale: f64,
    /// Fraction of core users discarded as duplicates at the merge
    /// (paper: 11%).
    pub duplicate_fraction_core: f64,
    /// Fraction of competitor users discarded as duplicates (paper: 28%).
    pub duplicate_fraction_competitor: f64,
    /// Homophily weight on internal edges after the merge.
    pub internal_bias: f64,
    /// Baseline weight on external edges after the merge.
    pub external_bias: f64,
    /// Additional external weight immediately after the merge…
    pub external_burst: f64,
    /// …decaying with this e-folding time (days).
    pub external_burst_decay_days: f64,
    /// Weight on edges to post-merge users.
    pub new_user_bias: f64,
    /// Fraction of surviving pre-merge users that fire a burst edge right
    /// after the merge.
    pub burst_participation: f64,
    /// Length of the post-merge activity burst window (days).
    pub burst_window_days: f64,
    /// Gap multiplier during the burst window (< 1 = more active).
    pub burst_gap_scale: f64,
    /// Mean extra edge budget granted to surviving core users at merge.
    pub extra_budget_core: f64,
    /// Mean extra edge budget granted to surviving competitor users.
    pub extra_budget_competitor: f64,
    /// Multiplier on the external-edge weight for competitor users: 5Q
    /// users are drawn into the larger Xiaonei orbit, keeping their
    /// external preference alive longer (the paper's Figure 9b finds 5Q's
    /// new-vs-external crossover at day 32 vs Xiaonei's day 5).
    pub competitor_external_factor: f64,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            competitor_start_day: 135,
            merge_day: 386,
            competitor_size_ratio: 1.07,
            competitor_budget_scale: 0.4,
            duplicate_fraction_core: 0.11,
            duplicate_fraction_competitor: 0.28,
            internal_bias: 6.0,
            external_bias: 0.3,
            external_burst: 2.5,
            external_burst_decay_days: 12.0,
            new_user_bias: 2.0,
            burst_participation: 0.35,
            burst_window_days: 14.0,
            burst_gap_scale: 0.3,
            extra_budget_core: 10.0,
            extra_budget_competitor: 4.0,
            competitor_external_factor: 2.5,
        }
    }
}

/// Complete generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master seed; every derived RNG stream comes from it.
    pub seed: u64,
    /// Trace length in days (paper: 771).
    pub days: u32,
    /// Growth schedule of the core network.
    pub growth: GrowthConfig,
    /// Per-node behaviour.
    pub behavior: BehaviorConfig,
    /// Two-network merge; `None` generates a single network.
    pub merge: Option<MergeConfig>,
}

impl TraceConfig {
    /// The default full-scale configuration (≈55K nodes, ≈1M edges over
    /// 771 days — the workspace's stand-in for Renren's 19.4M/199.6M).
    pub fn default_paper() -> Self {
        TraceConfig {
            seed: 42,
            days: 771,
            growth: GrowthConfig {
                initial_nodes: 2,
                final_nodes: 55_000,
                beta: 0.6,
                dips: GrowthConfig::paper_windows(),
                daily_jitter: 0.08,
            },
            behavior: BehaviorConfig::default(),
            merge: Some(MergeConfig::default()),
        }
    }

    /// A reduced configuration (≈8K nodes) for fast exploratory runs.
    pub fn small() -> Self {
        let mut cfg = Self::default_paper();
        cfg.growth.final_nodes = 8_000;
        cfg.behavior.group_size_cap = 500;
        cfg
    }

    /// A minimal configuration for unit tests and doctests: ≈600 nodes
    /// over 160 days with a merge at day 80.
    pub fn tiny() -> Self {
        TraceConfig {
            seed: 7,
            days: 160,
            growth: GrowthConfig {
                initial_nodes: 2,
                final_nodes: 600,
                beta: 0.7,
                dips: vec![DipWindow {
                    start_day: 30,
                    len: 7,
                    factor: 0.4,
                }],
                daily_jitter: 0.05,
            },
            behavior: BehaviorConfig {
                budget_xm: 5.0,
                group_size_cap: 60,
                ..BehaviorConfig::default()
            },
            merge: Some(MergeConfig {
                competitor_start_day: 30,
                merge_day: 80,
                ..MergeConfig::default()
            }),
        }
    }

    /// Days after the merge covered by the trace (`None` without merge).
    pub fn days_after_merge(&self) -> Option<u32> {
        self.merge
            .as_ref()
            .map(|m| self.days.saturating_sub(m.merge_day))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dip_window_membership() {
        let w = DipWindow {
            start_day: 10,
            len: 5,
            factor: 0.5,
        };
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(14));
        assert!(!w.contains(15));
    }

    #[test]
    fn presets_are_consistent() {
        for cfg in [
            TraceConfig::default_paper(),
            TraceConfig::small(),
            TraceConfig::tiny(),
        ] {
            assert!(cfg.growth.final_nodes > cfg.growth.initial_nodes);
            assert!(cfg.growth.beta > 0.0 && cfg.growth.beta <= 1.0);
            if let Some(m) = &cfg.merge {
                assert!(m.competitor_start_day < m.merge_day);
                assert!(m.merge_day < cfg.days);
            }
        }
    }

    #[test]
    fn days_after_merge() {
        let cfg = TraceConfig::tiny();
        assert_eq!(cfg.days_after_merge(), Some(80));
        let mut solo = cfg.clone();
        solo.merge = None;
        assert_eq!(solo.days_after_merge(), None);
    }

    #[test]
    fn serde_roundtrip_via_debug() {
        // serde derive compiles; spot-check Clone/PartialEq semantics.
        let a = TraceConfig::default_paper();
        let b = a.clone();
        assert_eq!(a, b);
    }
}
