//! Per-node behavioural state.
//!
//! Each user draws, on arrival: a heavy-tailed lifetime *edge budget*
//! (how many friendships they will initiate), a friend cap, and a Pareto
//! inter-edge gap distribution whose scale stretches with account age —
//! which is what makes activity front-loaded (Figure 2b) and inter-arrival
//! times power-law distributed (Figure 2a).

use crate::config::BehaviorConfig;
use osn_graph::Time;
use osn_stats::distribution::Pareto;
use rand::Rng;

/// Mutable per-node simulation state.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Join time.
    pub join_time: Time,
    /// Friendships this node may still initiate.
    pub budget_left: u32,
    /// Hard friend cap (initiated + received).
    pub cap: u32,
    /// True for duplicate accounts silenced at the merge.
    pub silenced: bool,
    /// Latent affinity group (school cohort); `None` for solo users.
    pub group: Option<u32>,
    /// Per-node multiplier on inter-edge gaps. Coupled inversely to the
    /// edge budget (engaged users are also fast users) and inflated for
    /// solo users — this plants the paper's Figure 7 finding that
    /// community members are the more active population.
    pub gap_mult: f64,
}

impl NodeState {
    /// Draw a fresh node state. `solo` marks a stand-alone user (no
    /// group); the group id itself is assigned by the generator.
    pub fn sample<R: Rng + ?Sized>(
        cfg: &BehaviorConfig,
        join_time: Time,
        budget_scale: f64,
        solo: bool,
        rng: &mut R,
    ) -> Self {
        let budget_dist = Pareto::new(cfg.budget_xm.max(0.5), cfg.budget_alpha);
        let cap = if rng.gen::<f64>() < cfg.raised_cap_fraction {
            cfg.raised_cap
        } else {
            cfg.friend_cap
        };
        let scale = budget_scale * if solo { cfg.solo_budget_scale } else { 1.0 };
        let raw = budget_dist.sample_capped(rng, cap as f64) * scale;
        let budget = raw.round().max(1.0);
        // Engaged (large-budget) users fire faster: gap multiplier shrinks
        // with the square root of the budget relative to its scale.
        let mut gap_mult = (cfg.budget_xm / budget).sqrt().clamp(0.15, 2.0);
        if solo {
            gap_mult *= cfg.solo_gap_mult;
        }
        NodeState {
            join_time,
            budget_left: budget as u32,
            cap,
            silenced: false,
            group: None,
            gap_mult,
        }
    }

    /// Number of edges to create immediately on arrival (bounded by the
    /// remaining budget).
    pub fn initial_edges<R: Rng + ?Sized>(&self, cfg: &BehaviorConfig, rng: &mut R) -> u32 {
        let max = cfg.initial_edges_max.min(self.budget_left);
        if max == 0 {
            0
        } else {
            rng.gen_range(1..=max)
        }
    }

    /// Sample the gap (in days) before this node's next edge creation,
    /// given the current time. The Pareto scale grows linearly with
    /// account age, so young accounts fire rapidly and old accounts
    /// rarely. `gap_scale` is an external multiplier (< 1 during the
    /// post-merge activity burst).
    pub fn next_gap_days<R: Rng + ?Sized>(
        &self,
        cfg: &BehaviorConfig,
        now: Time,
        gap_scale: f64,
        rng: &mut R,
    ) -> f64 {
        let age_days = now.since(self.join_time).as_days_f64();
        let xm =
            cfg.gap_xm_days * self.gap_mult * (1.0 + cfg.gap_aging_per_day * age_days) * gap_scale;
        let dist = Pareto::new(xm.max(1e-4), cfg.gap_alpha);
        // Cap single gaps at 120 days: the paper observes that 99% of
        // users create at least one edge every 94 days; an uncapped
        // Pareto tail would park heavy users forever.
        dist.sample_capped(rng, 120.0)
    }

    /// Whether this node can still initiate an edge given its current
    /// degree.
    pub fn can_initiate(&self, degree: usize) -> bool {
        !self.silenced && self.budget_left > 0 && degree < self.cap as usize
    }

    /// Whether this node may receive an edge.
    pub fn can_receive(&self, degree: usize) -> bool {
        !self.silenced && degree < self.cap as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_stats::rng_from_seed;

    fn cfg() -> BehaviorConfig {
        BehaviorConfig::default()
    }

    #[test]
    fn budgets_positive_and_capped() {
        let mut rng = rng_from_seed(1);
        for _ in 0..1000 {
            let s = NodeState::sample(&cfg(), Time::ZERO, 1.0, false, &mut rng);
            assert!(s.budget_left >= 1);
            assert!(s.budget_left <= 2000);
            assert!(s.cap == 1000 || s.cap == 2000);
        }
    }

    #[test]
    fn budget_scale_shrinks_budgets() {
        let mut rng = rng_from_seed(2);
        let full: u64 = (0..500)
            .map(|_| NodeState::sample(&cfg(), Time::ZERO, 1.0, false, &mut rng).budget_left as u64)
            .sum();
        let mut rng = rng_from_seed(2);
        let scaled: u64 = (0..500)
            .map(|_| NodeState::sample(&cfg(), Time::ZERO, 0.3, false, &mut rng).budget_left as u64)
            .sum();
        assert!(scaled * 2 < full, "scaled {scaled} vs full {full}");
    }

    #[test]
    fn gaps_grow_with_age() {
        let mut rng = rng_from_seed(3);
        let s = NodeState::sample(&cfg(), Time::ZERO, 1.0, false, &mut rng);
        let young: f64 = (0..2000)
            .map(|_| s.next_gap_days(&cfg(), Time::from_days(1), 1.0, &mut rng))
            .sum();
        let old: f64 = (0..2000)
            .map(|_| s.next_gap_days(&cfg(), Time::from_days(400), 1.0, &mut rng))
            .sum();
        assert!(old > young * 3.0, "old {old} young {young}");
    }

    #[test]
    fn gaps_capped() {
        let mut rng = rng_from_seed(4);
        let s = NodeState::sample(&cfg(), Time::ZERO, 1.0, false, &mut rng);
        for _ in 0..5000 {
            let g = s.next_gap_days(&cfg(), Time::from_days(700), 1.0, &mut rng);
            assert!(g > 0.0 && g <= 120.0);
        }
    }

    #[test]
    fn burst_scale_shrinks_gaps() {
        let mut rng = rng_from_seed(5);
        let s = NodeState::sample(&cfg(), Time::ZERO, 1.0, false, &mut rng);
        let normal: f64 = (0..2000)
            .map(|_| s.next_gap_days(&cfg(), Time::from_days(100), 1.0, &mut rng))
            .sum();
        let burst: f64 = (0..2000)
            .map(|_| s.next_gap_days(&cfg(), Time::from_days(100), 0.3, &mut rng))
            .sum();
        assert!(burst < normal);
    }

    #[test]
    fn permission_checks() {
        let mut rng = rng_from_seed(6);
        let mut s = NodeState::sample(&cfg(), Time::ZERO, 1.0, false, &mut rng);
        assert!(s.can_initiate(0));
        assert!(s.can_receive(0));
        assert!(!s.can_receive(s.cap as usize));
        s.budget_left = 0;
        assert!(!s.can_initiate(0));
        assert!(s.can_receive(5));
        s.silenced = true;
        assert!(!s.can_receive(5));
    }

    #[test]
    fn solo_users_are_slower_and_smaller() {
        let mut rng = rng_from_seed(8);
        let mut solo_budget = 0u64;
        let mut social_budget = 0u64;
        let mut solo_gap = 0.0;
        let mut social_gap = 0.0;
        for _ in 0..500 {
            let s = NodeState::sample(&cfg(), Time::ZERO, 1.0, true, &mut rng);
            solo_budget += s.budget_left as u64;
            solo_gap += s.gap_mult;
            let n = NodeState::sample(&cfg(), Time::ZERO, 1.0, false, &mut rng);
            social_budget += n.budget_left as u64;
            social_gap += n.gap_mult;
            assert!(s.group.is_none() && n.group.is_none()); // assigned later
        }
        assert!(solo_budget < social_budget);
        assert!(solo_gap > social_gap * 1.5);
    }

    #[test]
    fn big_budget_users_fire_faster() {
        let mut rng = rng_from_seed(9);
        let mut pairs: Vec<(u32, f64)> = (0..500)
            .map(|_| {
                let s = NodeState::sample(&cfg(), Time::ZERO, 1.0, false, &mut rng);
                (s.budget_left, s.gap_mult)
            })
            .collect();
        pairs.sort_unstable_by_key(|&(b, _)| b);
        let low: f64 = pairs[..100].iter().map(|&(_, g)| g).sum();
        let high: f64 = pairs[400..].iter().map(|&(_, g)| g).sum();
        assert!(high < low, "high-budget gap {high} vs low-budget {low}");
    }

    #[test]
    fn initial_edges_bounded() {
        let mut rng = rng_from_seed(7);
        let mut s = NodeState::sample(&cfg(), Time::ZERO, 1.0, false, &mut rng);
        for _ in 0..100 {
            let k = s.initial_edges(&cfg(), &mut rng);
            assert!(k >= 1 && k <= cfg().initial_edges_max);
        }
        s.budget_left = 0;
        assert_eq!(s.initial_edges(&cfg(), &mut rng), 0);
    }
}
