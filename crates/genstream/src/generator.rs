//! The event-driven trace simulator.
//!
//! Discrete-event simulation over a binary heap: node arrivals are pushed
//! day by day from the growth schedules; every live node keeps one pending
//! *edge action* in the queue. Popping in global time order guarantees
//! the produced [`EventLog`] is time-sorted, which the builder verifies.

use crate::attachment::{mixture_weights, Pool};
use crate::config::TraceConfig;
use crate::growth::GrowthSchedule;
use crate::lifecycle::NodeState;
use osn_graph::{EventLog, EventLogBuilder, NodeId, Origin, Time, SECONDS_PER_DAY};
use osn_stats::distribution::Pareto;
use osn_stats::sampling::{derive_seed, rng_from_seed};
use rand::rngs::SmallRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What a queued item does when popped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    /// A new account of the given origin is created.
    Arrive(u8),
    /// An existing node attempts to create one edge.
    Act(u32),
}

/// Heap item: ordered by time then insertion sequence (determinism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct QItem {
    t: u64,
    seq: u64,
    kind: Kind,
}

const ORIGIN_CORE: u8 = 0;
const ORIGIN_COMP: u8 = 1;
const ORIGIN_POST: u8 = 2;

fn origin_of(tag: u8) -> Origin {
    match tag {
        ORIGIN_CORE => Origin::Core,
        ORIGIN_COMP => Origin::Competitor,
        _ => Origin::PostMerge,
    }
}

/// Synthetic trace generator. See the crate docs for the model.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    cfg: TraceConfig,
}

struct Sim {
    cfg: TraceConfig,
    rng: SmallRng,
    builder: EventLogBuilder,
    states: Vec<NodeState>,
    origins: Vec<Origin>,
    core: Pool,
    comp: Pool,
    post: Pool,
    heap: BinaryHeap<Reverse<QItem>>,
    /// Latent affinity groups (school cohorts): a PA pool per group.
    groups: Vec<Pool>,
    /// Which pre-merge network each group belongs to (0 = core, 1 = comp).
    group_net: Vec<u8>,
    /// Size-proportional sampling tokens: one group-id entry per member,
    /// per network, so a uniform token draw picks groups ∝ size.
    group_tokens: [Vec<u32>; 2],
    /// Regions (universities/cities): a PA pool per region, aggregating
    /// all member nodes of the region's groups.
    regions: Vec<Pool>,
    /// Region of each group.
    group_region: Vec<u32>,
    /// Day each group was founded (drives cohesion decay).
    group_birth: Vec<u32>,
    /// Region sampling tokens per network: one region-id entry per group.
    region_tokens: [Vec<u32>; 2],
    seq: u64,
    merged: bool,
    /// Day currently being simulated.
    current_day: u32,
    expected_total_nodes: f64,
    comp_schedule: Option<GrowthSchedule>,
    attempts: u64,
    failures: u64,
}

impl TraceGenerator {
    /// Create a generator for the given configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceGenerator { cfg }
    }

    /// The configuration this generator runs.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Run the simulation and return the validated event log.
    pub fn generate(&self) -> EventLog {
        let cfg = self.cfg.clone();
        let core_schedule =
            GrowthSchedule::build(&cfg.growth, cfg.days, 0, derive_seed(cfg.seed, 1));
        // The competitor's own growth curve runs from its start day to the
        // merge day, targeting `ratio × N_core(merge_day)` users.
        let comp_schedule = cfg.merge.as_ref().map(|m| {
            let span = m.merge_day - m.competitor_start_day;
            let core_at_merge = expected_nodes_at(&cfg, m.merge_day);
            let comp_cfg = crate::config::GrowthConfig {
                initial_nodes: 2,
                final_nodes: ((core_at_merge * m.competitor_size_ratio) as u32).max(4),
                beta: cfg.growth.beta,
                dips: cfg.growth.dips.clone(),
                daily_jitter: cfg.growth.daily_jitter,
            };
            GrowthSchedule::build(
                &comp_cfg,
                span,
                m.competitor_start_day,
                derive_seed(cfg.seed, 2),
            )
        });

        let expected_total_nodes = cfg.growth.final_nodes as f64
            + comp_schedule.as_ref().map_or(0.0, |s| s.total() as f64);
        let total_hint = expected_total_nodes as usize;

        let mut sim = Sim {
            rng: rng_from_seed(derive_seed(cfg.seed, 3)),
            builder: EventLogBuilder::with_capacity(total_hint, total_hint * 16),
            states: Vec::with_capacity(total_hint),
            origins: Vec::with_capacity(total_hint),
            core: Pool::new(),
            comp: Pool::new(),
            post: Pool::new(),
            heap: BinaryHeap::new(),
            groups: Vec::new(),
            group_net: Vec::new(),
            group_tokens: [Vec::new(), Vec::new()],
            regions: Vec::new(),
            group_region: Vec::new(),
            group_birth: Vec::new(),
            region_tokens: [Vec::new(), Vec::new()],
            seq: 0,
            merged: false,
            current_day: 0,
            expected_total_nodes,
            comp_schedule,
            attempts: 0,
            failures: 0,
            cfg,
        };
        sim.run(&core_schedule);
        sim.builder.build()
    }
}

/// Expected core-network size on `day` under the growth curve (no dips).
fn expected_nodes_at(cfg: &TraceConfig, day: u32) -> f64 {
    let n0 = cfg.growth.initial_nodes.max(1) as f64;
    let nf = cfg.growth.final_nodes as f64;
    let frac = (day as f64 / cfg.days.max(1) as f64).min(1.0);
    n0 * (nf / n0).powf(frac.powf(cfg.growth.beta))
}

impl Sim {
    fn push(&mut self, t: u64, kind: Kind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(QItem { t, seq, kind }));
    }

    fn pool_of_mut(&mut self, origin: Origin) -> &mut Pool {
        match origin {
            Origin::Core => &mut self.core,
            Origin::Competitor => &mut self.comp,
            Origin::PostMerge => &mut self.post,
        }
    }

    fn run(&mut self, core_schedule: &GrowthSchedule) {
        let days = self.cfg.days;
        for day in 0..days {
            self.current_day = day;
            if let Some(m) = self.cfg.merge.clone() {
                if day == m.merge_day {
                    self.execute_merge(&m, day);
                }
            }
            self.push_arrivals(core_schedule, day);
            // Drain everything scheduled before the end of this day.
            let day_end = (day as u64 + 1) * SECONDS_PER_DAY;
            while let Some(&Reverse(item)) = self.heap.peek() {
                if item.t >= day_end {
                    break;
                }
                let Reverse(item) = self.heap.pop().expect("peeked");
                match item.kind {
                    Kind::Arrive(tag) => self.handle_arrival(Time(item.t), origin_of(tag)),
                    Kind::Act(node) => self.handle_action(Time(item.t), node),
                }
            }
        }
    }

    fn push_arrivals(&mut self, core_schedule: &GrowthSchedule, day: u32) {
        let merge_day = self.cfg.merge.as_ref().map(|m| m.merge_day);
        // Core-curve arrivals; after the merge they are post-merge users.
        let n_core = core_schedule.arrivals_on(day);
        let tag = match merge_day {
            Some(md) if day >= md => ORIGIN_POST,
            _ => ORIGIN_CORE,
        };
        self.push_sorted_arrivals(day, n_core, tag);
        // Competitor arrivals between its start day and the merge.
        if let Some(m) = self.cfg.merge.clone() {
            if day >= m.competitor_start_day && day < m.merge_day {
                let rel = day - m.competitor_start_day;
                let n_comp = self
                    .comp_schedule
                    .as_ref()
                    .map_or(0, |s| s.arrivals_on(rel));
                self.push_sorted_arrivals(day, n_comp, ORIGIN_COMP);
            }
        }
    }

    fn push_sorted_arrivals(&mut self, day: u32, count: u32, tag: u8) {
        if count == 0 {
            return;
        }
        let base = day as u64 * SECONDS_PER_DAY;
        let mut offsets: Vec<u64> = (0..count)
            .map(|_| self.rng.gen_range(0..SECONDS_PER_DAY))
            .collect();
        offsets.sort_unstable();
        for off in offsets {
            self.push(base + off, Kind::Arrive(tag));
        }
    }

    fn handle_arrival(&mut self, t: Time, origin: Origin) {
        let budget_scale = match (origin, self.cfg.merge.as_ref()) {
            (Origin::Competitor, Some(m)) => m.competitor_budget_scale,
            _ => 1.0,
        };
        let solo = self.rng.gen::<f64>() < self.cfg.behavior.solo_prob;
        let mut state = NodeState::sample(&self.cfg.behavior, t, budget_scale, solo, &mut self.rng);
        if !solo {
            state.group = Some(self.choose_group(origin));
        }
        let id = self
            .builder
            .add_node(t, origin)
            .expect("arrival times are monotone");
        debug_assert_eq!(id.index(), self.states.len());
        if let Some(g) = state.group {
            self.groups[g as usize].add_node(id.0);
            self.group_tokens[self.group_net[g as usize] as usize].push(g);
            let r = self.group_region[g as usize];
            self.regions[r as usize].add_node(id.0);
        }
        self.states.push(state);
        self.origins.push(origin);
        self.pool_of_mut(origin).add_node(id.0);

        // Initial burst of edges (offline friends found at sign-up).
        let k = self.states[id.index()].initial_edges(&self.cfg.behavior, &mut self.rng);
        for _ in 0..k {
            self.try_create_edge(t, id.0);
        }
        self.schedule_next(t, id.0);
    }

    /// Pick (or found) an affinity group for a new user. Pre-merge users
    /// only see their own network's groups; post-merge users see all.
    /// Existing groups are chosen with probability proportional to size,
    /// which yields power-law group sizes (Yule–Simon).
    fn choose_group(&mut self, origin: Origin) -> u32 {
        let nets: &[usize] = match origin {
            Origin::Core => &[0],
            Origin::Competitor => &[1],
            Origin::PostMerge => &[0, 1],
        };
        let total: usize = nets.iter().map(|&n| self.group_tokens[n].len()).sum();
        let cap = self.cfg.behavior.group_size_cap;
        if total > 0 && self.rng.gen::<f64>() >= self.cfg.behavior.group_new_prob {
            // Size-proportional pick, resampling a few times when the
            // chosen cohort is already full.
            for _ in 0..6 {
                let mut idx = self.rng.gen_range(0..total);
                for &n in nets {
                    if idx < self.group_tokens[n].len() {
                        let g = self.group_tokens[n][idx];
                        if cap == 0 || (self.groups[g as usize].num_nodes() as u32) < cap {
                            return g;
                        }
                        break;
                    }
                    idx -= self.group_tokens[n].len();
                }
            }
        }
        // Found a new group. Post-merge-founded groups are filed under the
        // core network (the merged product kept Xiaonei's infrastructure).
        let g = self.groups.len() as u32;
        self.groups.push(Pool::new());
        let net = if origin == Origin::Competitor { 1 } else { 0 };
        self.group_net.push(net);
        // Assign the new group to a region of the same network: a fresh
        // one with probability `region_new_prob`, else proportional to
        // existing regions' group counts.
        let tokens = &self.region_tokens[net as usize];
        let region =
            if tokens.is_empty() || self.rng.gen::<f64>() < self.cfg.behavior.region_new_prob {
                let r = self.regions.len() as u32;
                self.regions.push(Pool::new());
                r
            } else {
                tokens[self.rng.gen_range(0..tokens.len())]
            };
        self.group_region.push(region);
        self.group_birth.push(self.current_day);
        self.region_tokens[net as usize].push(region);
        g
    }

    fn handle_action(&mut self, t: Time, node: u32) {
        let deg = self.builder.degree(NodeId(node));
        if !self.states[node as usize].can_initiate(deg) {
            return; // dormant, silenced, or capped: drop silently
        }
        self.try_create_edge(t, node);
        self.schedule_next(t, node);
    }

    fn schedule_next(&mut self, t: Time, node: u32) {
        let state = &self.states[node as usize];
        if state.silenced || state.budget_left == 0 {
            return;
        }
        let gap_scale = self.burst_gap_scale(t, node);
        let gap = self.states[node as usize].next_gap_days(
            &self.cfg.behavior,
            t,
            gap_scale,
            &mut self.rng,
        );
        let next = t.plus_days_f64(gap.max(1.0 / SECONDS_PER_DAY as f64));
        self.push(next.seconds().max(t.seconds() + 1), Kind::Act(node));
    }

    /// Post-merge pre-merge-origin users fire faster for a short window.
    fn burst_gap_scale(&self, t: Time, node: u32) -> f64 {
        let Some(m) = self.cfg.merge.as_ref() else {
            return 1.0;
        };
        if !self.merged || self.origins[node as usize] == Origin::PostMerge {
            return 1.0;
        }
        let since = t.as_days_f64() - m.merge_day as f64;
        if since >= 0.0 && since < m.burst_window_days {
            m.burst_gap_scale
        } else {
            1.0
        }
    }

    /// Attempt to create one edge from `node` at time `t`.
    fn try_create_edge(&mut self, t: Time, node: u32) {
        self.attempts += 1;
        let Some(dest) = self.pick_destination(t, node) else {
            self.failures += 1;
            return;
        };
        self.builder
            .add_edge(t, NodeId(node), NodeId(dest))
            .expect("candidate was validated");
        self.states[node as usize].budget_left =
            self.states[node as usize].budget_left.saturating_sub(1);
        let o_node = self.origins[node as usize];
        let o_dest = self.origins[dest as usize];
        self.pool_of_mut(o_node).add_endpoint(node);
        self.pool_of_mut(o_dest).add_endpoint(dest);
        if let Some(g) = self.states[node as usize].group {
            self.groups[g as usize].add_endpoint(node);
            self.regions[self.group_region[g as usize] as usize].add_endpoint(node);
        }
        if let Some(g) = self.states[dest as usize].group {
            self.groups[g as usize].add_endpoint(dest);
            self.regions[self.group_region[g as usize] as usize].add_endpoint(dest);
        }
    }

    /// Destination choice: triadic closure, else pool mixture draw.
    fn pick_destination(&mut self, t: Time, node: u32) -> Option<u32> {
        const MAX_TRIES: usize = 24;
        let progress =
            (self.builder.num_nodes() as f64 / self.expected_total_nodes).clamp(0.0, 1.0);
        let (super_p, uniform_p) = mixture_weights(&self.cfg.behavior, progress);
        // Local (own-group) attachment first — this is what plants dense
        // community structure — then own-region attachment, which
        // concentrates a cohort's external edges on sibling cohorts. The
        // same progress-based mixture applies so preferential attachment
        // weakens inside groups and regions too.
        if let Some(g) = self.states[node as usize].group {
            let uniform = self.cfg.behavior.group_uniform.max(uniform_p);
            // Cohort cohesion decays with group age; the lost share leaks
            // into the region (and implicitly, beyond).
            let age = (self
                .current_day
                .saturating_sub(self.group_birth[g as usize])) as f64;
            let cohesion = (-age / self.cfg.behavior.group_age_tau_days.max(1.0)).exp();
            let local_w = self.cfg.behavior.local_prob * cohesion;
            let region_w = self.cfg.behavior.region_prob
                + self.cfg.behavior.local_prob * (1.0 - cohesion) * 0.8;
            let roll: f64 = self.rng.gen();
            if roll < local_w {
                for _ in 0..8 {
                    let pool = &self.groups[g as usize];
                    if pool.num_nodes() < 2 {
                        break;
                    }
                    let builder = &self.builder;
                    let degree = |n: u32| builder.degree(NodeId(n));
                    let Some(cand) = pool.draw(&mut self.rng, super_p, uniform, &degree) else {
                        break;
                    };
                    if self.valid_target(node, cand) {
                        return Some(cand);
                    }
                }
            } else if roll < local_w + region_w {
                let r = self.group_region[g as usize] as usize;
                for _ in 0..8 {
                    let pool = &self.regions[r];
                    if pool.num_nodes() < 2 {
                        break;
                    }
                    let builder = &self.builder;
                    let degree = |n: u32| builder.degree(NodeId(n));
                    let Some(cand) = pool.draw(&mut self.rng, super_p, uniform, &degree) else {
                        break;
                    };
                    if self.valid_target(node, cand) {
                        return Some(cand);
                    }
                }
            }
        }
        // Triadic closure weakens as the network matures: in a young,
        // campus-dense network most new friendships close triangles; in a
        // massive mature one they increasingly do not. This is also a key
        // driver of the measured attachment exponent's decay (triangle
        // closure is implicitly degree-biased).
        let triadic_p = self.cfg.behavior.triadic_prob * (1.0 - 0.6 * progress);
        let triadic = self.rng.gen::<f64>() < triadic_p;
        if triadic {
            if let Some(dest) = self.pick_triadic(node) {
                return Some(dest);
            }
            // fall through to pool draw
        }
        for _ in 0..MAX_TRIES {
            let tag = self.select_pool_tag(t, node);
            // Split borrows: pools/builder immutably, rng mutably.
            let pool = match tag {
                Origin::Core => &self.core,
                Origin::Competitor => &self.comp,
                Origin::PostMerge => &self.post,
            };
            let builder = &self.builder;
            let degree = |n: u32| builder.degree(NodeId(n));
            let cand = pool.draw(&mut self.rng, super_p, uniform_p, &degree)?;
            if self.valid_target(node, cand) {
                return Some(cand);
            }
        }
        None
    }

    /// Friend-of-friend candidate (few retries, validated).
    fn pick_triadic(&mut self, node: u32) -> Option<u32> {
        for _ in 0..8 {
            let neigh = self.builder.neighbors(NodeId(node));
            if neigh.is_empty() {
                return None;
            }
            let v = neigh[self.rng.gen_range(0..neigh.len())];
            let second = self.builder.neighbors(NodeId(v));
            if second.is_empty() {
                continue;
            }
            let w = second[self.rng.gen_range(0..second.len())];
            if w != node && self.valid_target(node, w) {
                return Some(w);
            }
        }
        None
    }

    fn valid_target(&mut self, node: u32, cand: u32) -> bool {
        if cand == node {
            return false;
        }
        let deg = self.builder.degree(NodeId(cand));
        if !self.states[cand as usize].can_receive(deg) {
            return false;
        }
        let b = &self.cfg.behavior;
        // Lapsed accounts rarely accept new friendships.
        if self.states[cand as usize].budget_left == 0
            && self.rng.gen::<f64>() > b.dormant_receive_prob
        {
            return false;
        }
        // Degree saturation: popular users accept proportionally fewer
        // requests, bending attachment sublinear as degrees grow.
        if b.receive_exponent > 0.0 && deg > 0 {
            let accept = (1.0 + deg as f64 / b.receive_saturation).powf(-b.receive_exponent);
            if self.rng.gen::<f64>() > accept {
                return false;
            }
        }
        // Pre-merge: strictly intra-network (pools already enforce this
        // for pool draws; triadic closure cannot cross either, but keep
        // the check as defence in depth).
        if !self.merged && self.origins[node as usize] != self.origins[cand as usize] {
            return false;
        }
        !self.builder.has_edge(NodeId(node), NodeId(cand))
    }

    /// Which pool (by origin tag) the initiator draws from.
    fn select_pool_tag(&mut self, t: Time, node: u32) -> Origin {
        let origin = self.origins[node as usize];
        if !self.merged {
            return origin;
        }
        let m = self.cfg.merge.as_ref().expect("merged implies config");
        match origin {
            Origin::PostMerge => {
                // New users have no old allegiances: weight pools by size.
                let w_core = self.core.num_nodes() as f64;
                let w_comp = self.comp.num_nodes() as f64;
                let w_post = self.post.num_nodes() as f64;
                self.weighted_pool_tag(w_core, w_comp, w_post)
            }
            Origin::Core | Origin::Competitor => {
                let since = (t.as_days_f64() - m.merge_day as f64).max(0.0);
                let mut ext_w = m.external_bias
                    + m.external_burst * (-since / m.external_burst_decay_days).exp();
                if origin == Origin::Competitor {
                    ext_w *= m.competitor_external_factor;
                }
                let (own, other) = match origin {
                    Origin::Core => (&self.core, &self.comp),
                    _ => (&self.comp, &self.core),
                };
                let w_own = m.internal_bias * own.num_nodes() as f64;
                let w_other = ext_w * other.num_nodes() as f64;
                let w_new = m.new_user_bias * self.post.num_nodes() as f64;
                let roll = self.rng.gen::<f64>() * (w_own + w_other + w_new);
                if roll < w_own {
                    origin
                } else if roll < w_own + w_other {
                    match origin {
                        Origin::Core => Origin::Competitor,
                        _ => Origin::Core,
                    }
                } else {
                    Origin::PostMerge
                }
            }
        }
    }

    fn weighted_pool_tag(&mut self, w_core: f64, w_comp: f64, w_post: f64) -> Origin {
        let total = w_core + w_comp + w_post;
        if total <= 0.0 {
            return Origin::PostMerge;
        }
        let roll = self.rng.gen::<f64>() * total;
        if roll < w_core {
            Origin::Core
        } else if roll < w_core + w_comp {
            Origin::Competitor
        } else {
            Origin::PostMerge
        }
    }

    /// Merge-day operations: silence duplicates, grant fresh budgets,
    /// schedule the cross-network burst.
    fn execute_merge(&mut self, m: &crate::config::MergeConfig, day: u32) {
        self.merged = true;
        let t0 = Time::day_start(day);
        let extra_core = Pareto::new((m.extra_budget_core / 2.0).max(0.1), 2.0);
        let extra_comp = Pareto::new((m.extra_budget_competitor / 2.0).max(0.1), 2.0);
        for node in 0..self.states.len() as u32 {
            let origin = self.origins[node as usize];
            let dup_frac = match origin {
                Origin::Core => m.duplicate_fraction_core,
                Origin::Competitor => m.duplicate_fraction_competitor,
                Origin::PostMerge => continue,
            };
            if self.rng.gen::<f64>() < dup_frac {
                self.states[node as usize].silenced = true;
                continue;
            }
            let extra = match origin {
                Origin::Core => extra_core.sample(&mut self.rng),
                _ => extra_comp.sample(&mut self.rng),
            };
            self.states[node as usize].budget_left += extra.round() as u32;
            if self.rng.gen::<f64>() < m.burst_participation {
                let delay = self.rng.gen_range(0..(3 * SECONDS_PER_DAY));
                self.push(t0.seconds() + delay, Kind::Act(node));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::EventKind;

    fn tiny_log() -> EventLog {
        TraceGenerator::new(TraceConfig::tiny()).generate()
    }

    #[test]
    fn produces_nodes_and_edges() {
        let log = tiny_log();
        let target = TraceConfig::tiny().growth.final_nodes;
        assert!(
            log.num_nodes() as f64 > target as f64 * 0.8,
            "{}",
            log.num_nodes()
        );
        assert!(
            log.num_edges() > log.num_nodes() as u64,
            "{}",
            log.num_edges()
        );
        assert!(log.end_day() < TraceConfig::tiny().days);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tiny_log();
        let b = tiny_log();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.kind, y.kind);
        }
        let mut cfg = TraceConfig::tiny();
        cfg.seed = 999;
        let c = TraceGenerator::new(cfg).generate();
        assert_ne!(a.num_edges(), c.num_edges());
    }

    #[test]
    fn all_origins_present() {
        let log = tiny_log();
        let mut core = 0;
        let mut comp = 0;
        let mut post = 0;
        for &o in log.origins() {
            match o {
                Origin::Core => core += 1,
                Origin::Competitor => comp += 1,
                Origin::PostMerge => post += 1,
            }
        }
        assert!(
            core > 0 && comp > 0 && post > 0,
            "core {core} comp {comp} post {post}"
        );
        // competitor roughly matches its ratio target vs core-at-merge
        assert!(comp as f64 > core as f64 * 0.1);
    }

    #[test]
    fn no_cross_network_edges_before_merge() {
        let log = tiny_log();
        let merge_day = TraceConfig::tiny().merge.unwrap().merge_day;
        let merge_t = Time::day_start(merge_day);
        for (t, u, v) in log.edge_events() {
            if t < merge_t {
                assert_eq!(
                    log.origin(u),
                    log.origin(v),
                    "cross-network edge {u}-{v} at {t} before merge"
                );
            }
        }
    }

    #[test]
    fn external_edges_exist_after_merge() {
        let log = tiny_log();
        let merge_day = TraceConfig::tiny().merge.unwrap().merge_day;
        let merge_t = Time::day_start(merge_day);
        let ext = log
            .edge_events()
            .filter(|&(t, u, v)| {
                t >= merge_t
                    && ((log.origin(u) == Origin::Core && log.origin(v) == Origin::Competitor)
                        || (log.origin(u) == Origin::Competitor && log.origin(v) == Origin::Core))
            })
            .count();
        assert!(ext > 0, "no external edges after merge");
    }

    #[test]
    fn post_merge_users_only_after_merge_day() {
        let log = tiny_log();
        let merge_day = TraceConfig::tiny().merge.unwrap().merge_day;
        for e in log.events() {
            if let EventKind::AddNode { origin, .. } = e.kind {
                match origin {
                    Origin::PostMerge => assert!(e.time.day() >= merge_day),
                    Origin::Core => assert!(e.time.day() < merge_day),
                    Origin::Competitor => {
                        let m = TraceConfig::tiny().merge.unwrap();
                        assert!(e.time.day() >= m.competitor_start_day);
                        assert!(e.time.day() < m.merge_day);
                    }
                }
            }
        }
    }

    #[test]
    fn single_network_mode() {
        let mut cfg = TraceConfig::tiny();
        cfg.merge = None;
        let log = TraceGenerator::new(cfg).generate();
        assert!(log.origins().iter().all(|&o| o == Origin::Core));
        assert!(log.num_edges() > 0);
    }

    #[test]
    fn degrees_respect_cap() {
        let mut cfg = TraceConfig::tiny();
        cfg.behavior.friend_cap = 30;
        cfg.behavior.raised_cap = 60;
        let log = TraceGenerator::new(cfg).generate();
        let mut deg = vec![0u32; log.num_nodes() as usize];
        for (_, u, v) in log.edge_events() {
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        assert!(
            deg.iter().all(|&d| d <= 60),
            "max {}",
            deg.iter().max().unwrap()
        );
        // the cap binds for at least someone
        assert!(deg.iter().any(|&d| d >= 25));
    }
}
