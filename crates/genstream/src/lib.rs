//! # osn-genstream — synthetic Renren-like trace generator
//!
//! The Renren event stream analysed by the paper is proprietary and was
//! never released. This crate is the substitution mandated by DESIGN.md:
//! a seeded generator producing a timestamped node/edge creation stream
//! that plants every *mechanism* the paper's analyses detect, so the
//! analysis pipelines in `osn-core` exercise exactly the code paths that
//! ran on the real data:
//!
//! * **Exponential-flavoured growth** with a decelerating relative rate,
//!   holiday dips and publicity surges (Figure 1a–b).
//! * **Front-loaded user activity**: each user draws a heavy-tailed edge
//!   budget and Pareto inter-edge gaps that lengthen with account age
//!   (Figures 2a–b, power-law inter-arrival).
//! * **Preferential attachment with decaying strength**: destinations are
//!   drawn from a mixture of super-linear PA, linear PA, triadic closure
//!   and uniform choice whose weights shift as the network grows
//!   (Figure 3's α(t) decay).
//! * **Triadic closure** produces clustering and community structure
//!   (Figures 1e, 4–7).
//! * **A two-network merge**: an independent competitor network born
//!   mid-trace, merged on a configurable day, with duplicate accounts
//!   going silent, internal-edge homophily, a decaying external-edge
//!   burst, and new-user takeover (Figures 8–9).
//!
//! Everything is deterministic given [`TraceConfig::seed`].

pub mod attachment;
pub mod baselines;
pub mod config;
pub mod generator;
pub mod growth;
pub mod lifecycle;

pub use baselines::{
    barabasi_albert, forest_fire, mixed_attachment, uniform_attachment, BaselineConfig,
};
pub use config::{BehaviorConfig, DipWindow, GrowthConfig, MergeConfig, TraceConfig};
pub use generator::TraceGenerator;
pub use growth::GrowthSchedule;
