//! Baseline generative models.
//!
//! The paper's §3.3 concludes that "an accurate model to capture the
//! growth and evolution of today's social networks should combine a
//! preferential attachment component with a randomized attachment
//! component", and its related work leans on the classic generators.
//! This module implements the three standard baselines so the analysis
//! suite can compare them against the full Renren-shaped generator:
//!
//! * [`barabasi_albert`] — pure linear preferential attachment
//!   (Barabási–Albert 1999, the paper's \[5\]);
//! * [`mixed_attachment`] — the PA + uniform mixture the paper's
//!   hypothesis calls for, with a fixed mixing weight;
//! * [`forest_fire`] — Leskovec's forest-fire model (the paper's \[21\]),
//!   which produces densification and community-ish structure through
//!   recursive burning.
//!
//! All three emit ordinary [`EventLog`]s with node arrivals spread
//! uniformly over a configurable number of days, so every analysis in
//! `osn-core` runs on them unchanged.

use osn_graph::{EventLog, EventLogBuilder, NodeId, Origin, Time, SECONDS_PER_DAY};
use osn_stats::sampling::rng_from_seed;
use rand::Rng;

/// Shared shape parameters for the baselines.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// Number of nodes to generate.
    pub nodes: u32,
    /// Edges each arriving node creates (where applicable).
    pub edges_per_node: u32,
    /// Days the arrivals are spread over (timestamps are synthetic but
    /// uniform, so per-day analyses still work).
    pub days: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            nodes: 5_000,
            edges_per_node: 5,
            days: 500,
            seed: 0,
        }
    }
}

fn arrival_time(cfg: &BaselineConfig, i: u32) -> Time {
    let total_secs = cfg.days as u64 * SECONDS_PER_DAY;
    Time(total_secs.saturating_mul(i as u64) / cfg.nodes.max(1) as u64)
}

/// Pure linear preferential attachment: each arriving node connects
/// `edges_per_node` times to endpoints sampled from the edge-endpoint
/// multiset ("rich get richer"). Seeded with a small clique.
pub fn barabasi_albert(cfg: &BaselineConfig) -> EventLog {
    mixed_attachment(cfg, 0.0)
}

/// Uniform-attachment control: destinations chosen uniformly among
/// existing nodes (no degree bias at all).
pub fn uniform_attachment(cfg: &BaselineConfig) -> EventLog {
    mixed_attachment(cfg, 1.0)
}

/// PA + uniform mixture: with probability `uniform_share` the
/// destination is a uniformly random existing node, otherwise a linear
/// PA draw. `uniform_share = 0` is Barabási–Albert; `1` is uniform
/// attachment. This is the two-component model the paper's §3.3
/// hypothesises.
pub fn mixed_attachment(cfg: &BaselineConfig, uniform_share: f64) -> EventLog {
    let mut rng = rng_from_seed(cfg.seed);
    let m = cfg.edges_per_node.max(1);
    let seed_nodes = (m + 1).max(2);
    let mut b = EventLogBuilder::with_capacity(cfg.nodes as usize, (cfg.nodes * m) as usize);
    let mut endpoints: Vec<u32> = Vec::with_capacity((cfg.nodes * m * 2) as usize);
    // Seed clique.
    for i in 0..seed_nodes {
        let t = arrival_time(cfg, i);
        let id = b.add_node(t, Origin::Core).expect("monotone");
        for j in 0..i {
            b.add_edge(t, id, NodeId(j)).expect("seed clique");
            endpoints.push(id.0);
            endpoints.push(j);
        }
    }
    for i in seed_nodes..cfg.nodes {
        let t = arrival_time(cfg, i);
        let id = b.add_node(t, Origin::Core).expect("monotone");
        let mut created = 0;
        let mut attempts = 0;
        while created < m && attempts < 30 * m {
            attempts += 1;
            let dest = if rng.gen::<f64>() < uniform_share || endpoints.is_empty() {
                rng.gen_range(0..i)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if dest != id.0 && !b.has_edge(id, NodeId(dest)) {
                b.add_edge(t, id, NodeId(dest)).expect("validated");
                endpoints.push(id.0);
                endpoints.push(dest);
                created += 1;
            }
        }
    }
    b.build()
}

/// Forest-fire model (Leskovec–Kleinberg–Faloutsos 2005): each arriving
/// node picks a uniformly random *ambassador*, links to it, then
/// recursively "burns" outward: from each burned node it links to a
/// geometrically-distributed number of that node's neighbours (mean
/// `p/(1-p)`), never revisiting. Produces densification and heavy-tailed
/// degrees without an explicit PA rule.
pub fn forest_fire(cfg: &BaselineConfig, forward_prob: f64) -> EventLog {
    let p = forward_prob.clamp(0.0, 0.95);
    let mut rng = rng_from_seed(cfg.seed);
    let mut b = EventLogBuilder::with_capacity(cfg.nodes as usize, cfg.nodes as usize * 8);
    // two seed nodes with one edge
    let n0 = b
        .add_node(arrival_time(cfg, 0), Origin::Core)
        .expect("monotone");
    let n1 = b
        .add_node(arrival_time(cfg, 1), Origin::Core)
        .expect("monotone");
    b.add_edge(arrival_time(cfg, 1), n0, n1).expect("seed");

    // Cap the burn so a single arrival cannot link to the whole graph.
    let burn_cap = 60usize;
    let mut burned = vec![u32::MAX; cfg.nodes as usize]; // generation marker
    for i in 2..cfg.nodes {
        let t = arrival_time(cfg, i);
        let id = b.add_node(t, Origin::Core).expect("monotone");
        let ambassador = rng.gen_range(0..i);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(ambassador);
        burned[ambassador as usize] = i;
        burned[id.index()] = i;
        let mut links = 0usize;
        while let Some(v) = queue.pop_front() {
            if links >= burn_cap {
                break;
            }
            if !b.has_edge(id, NodeId(v)) {
                b.add_edge(t, id, NodeId(v)).expect("validated");
                links += 1;
            }
            // geometric number of forward burns with mean p/(1-p)
            let mut spread = 0usize;
            while rng.gen::<f64>() < p {
                spread += 1;
                if spread > 16 {
                    break;
                }
            }
            if spread == 0 {
                continue;
            }
            let neigh = b.neighbors(NodeId(v)).to_vec();
            let mut picked = 0usize;
            for _ in 0..neigh.len().min(spread * 4) {
                if picked >= spread {
                    break;
                }
                let w = neigh[rng.gen_range(0..neigh.len())];
                if burned[w as usize] != i {
                    burned[w as usize] = i;
                    queue.push_back(w);
                    picked += 1;
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BaselineConfig {
        BaselineConfig {
            nodes: 1_500,
            edges_per_node: 4,
            days: 300,
            seed: 11,
        }
    }

    #[test]
    fn ba_counts_and_tail() {
        let log = barabasi_albert(&cfg());
        assert_eq!(log.num_nodes(), 1_500);
        // ~4 edges per node (+ seed clique)
        assert!(log.num_edges() as f64 > 1_500.0 * 3.5);
        // heavy tail: hub degree far above the mean
        let mut deg = vec![0u32; 1_500];
        for (_, u, v) in log.edge_events() {
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().map(|&d| d as f64).sum::<f64>() / 1_500.0;
        assert!(max as f64 > mean * 8.0, "max {max} mean {mean}");
    }

    #[test]
    fn uniform_has_lighter_tail_than_ba() {
        let ba = barabasi_albert(&cfg());
        let un = uniform_attachment(&cfg());
        let max_deg = |log: &EventLog| {
            let mut deg = vec![0u32; log.num_nodes() as usize];
            for (_, u, v) in log.edge_events() {
                deg[u.index()] += 1;
                deg[v.index()] += 1;
            }
            *deg.iter().max().unwrap()
        };
        assert!(
            max_deg(&ba) > 2 * max_deg(&un),
            "ba {} un {}",
            max_deg(&ba),
            max_deg(&un)
        );
    }

    #[test]
    fn mixture_interpolates() {
        let half = mixed_attachment(&cfg(), 0.5);
        assert_eq!(half.num_nodes(), 1_500);
        assert!(half.num_edges() > 4_000);
    }

    #[test]
    fn forest_fire_densifies() {
        let log = forest_fire(&cfg(), 0.35);
        assert_eq!(log.num_nodes(), 1_500);
        // more than 1 edge per node on average (burning links beyond the
        // ambassador)
        assert!(
            log.num_edges() > 1_800,
            "forest fire produced only {} edges",
            log.num_edges()
        );
        // timestamps cover the configured span
        assert!(log.end_day() >= 295);
    }

    #[test]
    fn deterministic() {
        let a = forest_fire(&cfg(), 0.3);
        let b = forest_fire(&cfg(), 0.3);
        assert_eq!(a.num_edges(), b.num_edges());
        let c = barabasi_albert(&cfg());
        let d = barabasi_albert(&cfg());
        assert_eq!(c.num_edges(), d.num_edges());
    }

    #[test]
    fn logs_are_analysable() {
        // daily counts and join times work (the downstream contract)
        let log = mixed_attachment(&cfg(), 0.3);
        let (nodes, edges) = log.daily_counts();
        assert_eq!(nodes.iter().sum::<u64>(), 1_500);
        assert_eq!(edges.iter().sum::<u64>(), log.num_edges());
        assert!(log.origins().iter().all(|&o| o == Origin::Core));
    }
}
