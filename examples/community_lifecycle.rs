//! Community lifecycle: track communities as the network grows, watch
//! them be born, merge, split and die, and train the merge predictor.
//!
//! This is the §4 workload of the paper — incremental Louvain across
//! snapshots, Jaccard identity tracking, and an SVM over structural
//! features predicting next-snapshot merges.
//!
//! ```sh
//! cargo run --release --example community_lifecycle
//! ```

use multiscale_osn::community::EvolutionEvent;
use multiscale_osn::core::communities::{
    merge_prediction, merge_split_ratio, strongest_tie, track, CommunityAnalysisConfig,
    MergePredictionConfig,
};
use multiscale_osn::genstream::{TraceConfig, TraceGenerator};

fn main() {
    let cfg = TraceConfig::small();
    let merge_day = cfg.merge.as_ref().map(|m| m.merge_day);
    let log = TraceGenerator::new(cfg).generate();

    let tcfg = CommunityAnalysisConfig {
        stride: 6,
        ..CommunityAnalysisConfig::default()
    };
    println!(
        "tracking communities every {} days (δ = {})…\n",
        tcfg.stride, tcfg.delta
    );
    let (summaries, output) = track(&log, &tcfg);

    println!(
        "{:>5} {:>6} {:>9} {:>9} {:>8}",
        "day", "Q", "tracked", "top5%", "avg-sim"
    );
    for s in summaries.iter().step_by(8) {
        println!(
            "{:>5} {:>6.3} {:>9} {:>9.0} {:>8}",
            s.day,
            s.modularity,
            s.num_tracked,
            s.top5_coverage * 100.0,
            s.avg_similarity
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    // Event census.
    let mut births = 0;
    let mut deaths = 0;
    let mut merges = 0;
    let mut splits = 0;
    for e in &output.events {
        match e {
            EvolutionEvent::Birth { .. } => births += 1,
            EvolutionEvent::Death { .. } => deaths += 1,
            EvolutionEvent::Merge { .. } => merges += 1,
            EvolutionEvent::Split { .. } => splits += 1,
        }
    }
    println!(
        "\nevolution events: {births} births, {deaths} deaths, {merges} merges, {splits} splits"
    );

    let (ratio_merges, ratio_splits) = merge_split_ratio(&output);
    println!(
        "merge pairs are asymmetric (median size ratio {:.3}); splits are balanced ({:.3})",
        ratio_merges.median().unwrap_or(f64::NAN),
        ratio_splits.median().unwrap_or(f64::NAN)
    );
    if let (_, Some(frac)) = strongest_tie(&output) {
        println!(
            "{:.0}% of merges went to the strongest-tie partner",
            frac * 100.0
        );
    }

    // Merge prediction (Figure 6b).
    let mp_cfg = MergePredictionConfig {
        exclude_day: merge_day,
        ..Default::default()
    };
    match merge_prediction(&output, &mp_cfg) {
        Some(mp) => {
            println!(
                "\nSVM merge predictor: accuracy {:.0}%, merge recall {:.0}%, no-merge recall {:.0}% \
                 over {} samples",
                mp.confusion.accuracy().unwrap_or(0.0) * 100.0,
                mp.confusion.positive_recall().unwrap_or(0.0) * 100.0,
                mp.confusion.negative_recall().unwrap_or(0.0) * 100.0,
                mp.samples
            );
        }
        None => println!("\n(not enough merge samples to train the predictor at this scale)"),
    }
}
