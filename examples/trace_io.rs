//! Trace persistence: configure a custom generator, write the event log
//! to disk in the plain-text format, read it back, and verify the
//! round-trip.
//!
//! ```sh
//! cargo run --release --example trace_io
//! ```

use multiscale_osn::genstream::{DipWindow, GrowthConfig, TraceConfig, TraceGenerator};
use multiscale_osn::graph::io::{read_log, write_log};

fn main() {
    // A custom configuration: a single network (no merge), one holiday
    // dip, heavier-tailed budgets.
    let mut cfg = TraceConfig::tiny();
    cfg.merge = None;
    cfg.growth = GrowthConfig {
        initial_nodes: 2,
        final_nodes: 1_200,
        beta: 0.65,
        dips: vec![DipWindow {
            start_day: 40,
            len: 10,
            factor: 0.3,
        }],
        daily_jitter: 0.05,
    };
    cfg.behavior.budget_alpha = 1.3;
    cfg.seed = 2026;

    let log = TraceGenerator::new(cfg).generate();
    println!(
        "generated {} nodes / {} edges over {} days",
        log.num_nodes(),
        log.num_edges(),
        log.end_day() + 1
    );

    let path = std::env::temp_dir().join("multiscale_osn_trace.events");
    let file = std::fs::File::create(&path).expect("create trace file");
    write_log(&log, file).expect("write trace");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "wrote {} ({:.1} KiB)",
        path.display(),
        bytes as f64 / 1024.0
    );

    let file = std::fs::File::open(&path).expect("open trace file");
    let back = read_log(file).expect("parse trace");
    assert_eq!(back.num_nodes(), log.num_nodes());
    assert_eq!(back.num_edges(), log.num_edges());
    assert_eq!(back.events().len(), log.events().len());
    println!(
        "read back {} events — round-trip verified",
        back.events().len()
    );
    std::fs::remove_file(&path).ok();
}
