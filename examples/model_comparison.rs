//! Generative-model comparison: the paper's §3.3 hypothesis, measured.
//!
//! Runs the same measurement pipeline (attachment exponent α, clustering,
//! modularity) over the classic baselines — Barabási–Albert, uniform
//! attachment, the PA+uniform mixture the paper hypothesises, and the
//! forest-fire model — and over the full Renren-shaped generator, to
//! show which lenses separate the real-network shape from the models.
//!
//! ```sh
//! cargo run --release --example model_comparison
//! ```

use multiscale_osn::core::models::{profile_model, render_profiles, ModelComparisonConfig};
use multiscale_osn::genstream::baselines::{
    barabasi_albert, forest_fire, mixed_attachment, uniform_attachment, BaselineConfig,
};
use multiscale_osn::genstream::{TraceConfig, TraceGenerator};

fn main() {
    let bcfg = BaselineConfig {
        nodes: 6_000,
        edges_per_node: 6,
        days: 500,
        seed: 3,
    };
    let mcfg = ModelComparisonConfig::default();

    println!("profiling five generative models under the paper's lenses…\n");
    let mut profiles = vec![profile_model(
        "barabasi_albert",
        &barabasi_albert(&bcfg),
        &mcfg,
    )];
    profiles.push(profile_model("uniform", &uniform_attachment(&bcfg), &mcfg));
    profiles.push(profile_model(
        "pa+uniform(0.5)",
        &mixed_attachment(&bcfg, 0.5),
        &mcfg,
    ));
    profiles.push(profile_model(
        "forest_fire(0.35)",
        &forest_fire(&bcfg, 0.35),
        &mcfg,
    ));
    let mut full_cfg = TraceConfig::small();
    full_cfg.growth.final_nodes = 6_000;
    let full = TraceGenerator::new(full_cfg).generate();
    profiles.push(profile_model("full_generator", &full, &mcfg));

    print!("{}", render_profiles(&profiles));

    println!(
        "\nreading: pure attachment models hold α flat and produce no clustering or\n\
         community structure; only the full generator reproduces the paper's package —\n\
         decaying α, high-but-decaying clustering, and strong modularity. This is the\n\
         quantitative form of §3.3's conclusion that a realistic model needs preferential\n\
         attachment, a growing randomised component, and locality, together."
    );
}
