//! Quickstart: generate a synthetic OSN trace, replay it into snapshots,
//! and compute first-order graph metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use multiscale_osn::genstream::{TraceConfig, TraceGenerator};
use multiscale_osn::graph::DailySnapshots;
use multiscale_osn::metrics::{average_clustering, avg_path_length_sampled, degree_assortativity};
use multiscale_osn::stats::rng_from_seed;

fn main() {
    // A small deterministic trace: ~8K users over 771 simulated days,
    // including the two-network merge on day 386.
    let cfg = TraceConfig::small();
    let merge_day = cfg.merge.as_ref().map(|m| m.merge_day);
    let log = TraceGenerator::new(cfg).generate();
    println!(
        "generated {} users and {} friendships over {} days",
        log.num_nodes(),
        log.num_edges(),
        log.end_day() + 1
    );
    if let Some(md) = merge_day {
        println!("the competitor network merges in on day {md}\n");
    }

    // Walk monthly snapshots and print the network's vital signs.
    println!(
        "{:>5} {:>8} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "day", "nodes", "edges", "deg", "cc", "apl", "assort"
    );
    let mut rng = rng_from_seed(7);
    for snap in DailySnapshots::new(&log, 30, 60) {
        let g = &snap.graph;
        let cc = average_clustering(g, 800, &mut rng);
        let apl = avg_path_length_sampled(g, 150, &mut rng);
        let assort = degree_assortativity(g);
        println!(
            "{:>5} {:>8} {:>9} {:>7.2} {:>7.3} {:>7} {:>7}",
            snap.day,
            snap.num_nodes,
            snap.num_edges,
            g.average_degree(),
            cc,
            apl.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
            assort
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
}
