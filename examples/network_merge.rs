//! Network-merge forensics: reproduce the paper's §5 analysis on the
//! synthetic Renren/5Q merge — duplicate accounts, post-merge edge
//! classes, and the collapse of the distance between the two OSNs.
//!
//! ```sh
//! cargo run --release --example network_merge
//! ```

use multiscale_osn::core::merge::{
    active_users, classify, cross_distance, duplicate_estimate, edges_per_day, EdgeClass,
    MergeAnalysisConfig,
};
use multiscale_osn::genstream::{TraceConfig, TraceGenerator};
use multiscale_osn::graph::Time;

fn main() {
    let cfg = TraceConfig::small();
    let merge_day = cfg.merge.as_ref().expect("merge configured").merge_day;
    let log = TraceGenerator::new(cfg).generate();
    let mcfg = MergeAnalysisConfig::default();

    // Duplicate accounts: who went silent the day the networks merged?
    let (core_dup, comp_dup) = duplicate_estimate(&log, merge_day, &mcfg);
    println!(
        "duplicate-account estimate: {:.0}% of core and {:.0}% of competitor accounts\n\
         are inactive from day 0 after the merge (paper: 11% and 28%)\n",
        core_dup * 100.0,
        comp_dup * 100.0
    );

    // Edge-class census after the merge.
    let merge_t = Time::day_start(merge_day);
    let mut counts = [0u64; 4];
    for (t, u, v) in log.edge_events() {
        if t >= merge_t {
            let idx = match classify(&log, u, v) {
                EdgeClass::New => 0,
                EdgeClass::InternalCore => 1,
                EdgeClass::InternalComp => 2,
                EdgeClass::External => 3,
            };
            counts[idx] += 1;
        }
    }
    println!(
        "post-merge edges: {} to new users, {} internal-core, {} internal-competitor, {} external\n",
        counts[0], counts[1], counts[2], counts[3]
    );

    // When do new users take over edge creation?
    let epd = edges_per_day(&log, merge_day);
    let new = &epd.series[0];
    let internal = &epd.series[1];
    let cross = new
        .points
        .iter()
        .zip(internal.points.iter())
        .find(|((_, n), (_, i))| n > i)
        .map(|((x, _), _)| *x);
    println!(
        "new-user edges overtake internal edges {cross:?} days after the merge (paper: day 19)\n"
    );

    // Activity decline per origin.
    let act = active_users(&log, merge_day, &mcfg);
    for (name, table) in [("core", &act.core), ("competitor", &act.competitor)] {
        let all = &table.series[0];
        if let (Some(&(_, first)), Some(last)) = (all.points.first(), all.last_y()) {
            println!("{name}: {first:.0}% of accounts active at day 0 after merge, {last:.0}% at the end of the window");
        }
    }

    // The two networks become one.
    println!("\naverage hop distance between the OSNs (pre-merge users only):");
    let dist = cross_distance(&log, merge_day, &mcfg);
    for &(x, y) in dist.series[0].points.iter().step_by(6) {
        let bar = "#".repeat((y * 12.0) as usize);
        println!("  day {x:>4.0}: {y:>5.2} {bar}");
    }
}
