//! Preferential-attachment strength over time: the §3.2 analysis.
//!
//! Measures the edge probability pe(d), fits pe(d) ∝ d^α per window of
//! edge events, and shows α decaying as the network grows — the paper's
//! headline node-level finding.
//!
//! ```sh
//! cargo run --release --example attachment_strength
//! ```

use multiscale_osn::core::network::import_view;
use multiscale_osn::core::preferential::{
    alpha_series, edge_probability, AlphaConfig, DestinationRule,
};
use multiscale_osn::genstream::{TraceConfig, TraceGenerator};
use multiscale_osn::stats::fit::polyval;

fn main() {
    let cfg = TraceConfig::small();
    let merge_day = cfg.merge.as_ref().expect("merge configured").merge_day;
    let raw = TraceGenerator::new(cfg).generate();
    // Use the paper's data layout: the competitor's history is a bulk
    // import on the merge day (this is what produces the α ripple).
    let log = import_view(&raw, merge_day);

    let acfg = AlphaConfig::default();

    // A single pe(d) snapshot mid-trace, under both destination rules.
    let mid = log.num_edges() * 3 / 10;
    for rule in [DestinationRule::HigherDegree, DestinationRule::Random] {
        if let Some(ep) = edge_probability(&log, rule, &acfg, mid) {
            let fit = ep.fit.expect("fit");
            println!(
                "pe(d) at {} edges, {:?} destinations: α = {:.2} (MSE {:.1e}, {} degree bins)",
                ep.edge_count,
                rule,
                fit.exponent,
                fit.mse,
                ep.points.len()
            );
        }
    }

    // α(t) under both rules.
    println!("\nα as the network grows:");
    let hi = alpha_series(&log, DestinationRule::HigherDegree, &acfg);
    let lo = alpha_series(&log, DestinationRule::Random, &acfg);
    println!("{:>10} {:>10} {:>10}", "edges", "α(higher)", "α(random)");
    let step = (hi.points.len() / 12).max(1);
    for (h, l) in hi.points.iter().zip(lo.points.iter()).step_by(step) {
        println!("{:>10} {:>10.2} {:>10.2}", h.edge_count, h.alpha, l.alpha);
    }

    if let Some(coeffs) = hi.polynomial_fit(5) {
        let first = hi.points.first().expect("non-empty").edge_count as f64;
        let last = hi.points.last().expect("non-empty").edge_count as f64;
        println!(
            "\ndegree-5 polynomial fit of α(n): α({:.0}) ≈ {:.2}, α({:.0}) ≈ {:.2}",
            first,
            polyval(&coeffs, first),
            last,
            polyval(&coeffs, last)
        );
    }
    println!(
        "\nthe paper's Renren measurement: α decays 1.25 → 0.65 over 199M edges,\n\
         with the higher-degree rule ≈0.2 above the random rule throughout."
    );
}
